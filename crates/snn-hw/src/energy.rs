//! Engine power and per-inference energy model (Fig. 14(b) reproduction).

use crate::components::{baseline, EngineEnhancement};
use crate::latency::{inference_latency, LatencyEstimate};
use crate::mapping::Tiling;
use crate::params::EngineConfig;

/// Average-power breakdown of a (possibly enhanced) engine, µW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Baseline crossbar + neurons + control.
    pub base_uw: f64,
    /// Added enhancement logic (hardened cells).
    pub enhancement_uw: f64,
}

impl PowerBreakdown {
    /// Total average power, µW.
    pub fn total_uw(&self) -> f64 {
        self.base_uw + self.enhancement_uw
    }

    /// Total average power, mW.
    pub fn total_mw(&self) -> f64 {
        self.total_uw() / 1e3
    }
}

/// Computes engine average power with the given enhancement attached.
pub fn engine_power(cfg: EngineConfig, enhancement: &EngineEnhancement) -> PowerBreakdown {
    let n_syn = cfg.n_synapses() as f64;
    let n_neu = cfg.cols as f64;
    let base_uw = n_syn
        * (baseline::WEIGHT_REGISTER.power_uw() + baseline::COLUMN_ADDER.power_uw())
        + n_neu * baseline::NEURON_DATAPATH.power_uw()
        + baseline::CONTROL_FRACTION
            * n_syn
            * (baseline::WEIGHT_REGISTER.power_uw() + baseline::COLUMN_ADDER.power_uw());
    let enhancement_uw = n_syn
        * enhancement
            .per_synapse
            .iter()
            .map(|c| c.power_uw())
            .sum::<f64>()
        + n_neu
            * enhancement
                .per_neuron
                .iter()
                .map(|c| c.power_uw())
                .sum::<f64>()
        + enhancement.shared.iter().map(|c| c.power_uw()).sum::<f64>();
    PowerBreakdown {
        base_uw,
        enhancement_uw,
    }
}

/// An energy estimate for one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// The latency this energy was computed over.
    pub latency: LatencyEstimate,
    /// Average power during execution, µW.
    pub power_uw: f64,
}

impl EnergyEstimate {
    /// Energy in nanojoules (`P × t`).
    pub fn total_nj(&self) -> f64 {
        // µW × ns = femtojoule; /1e6 → nJ
        self.power_uw * self.latency.total_ns() / 1e6
    }

    /// Energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_nj() / 1e3
    }

    /// Ratio of this energy to a reference energy.
    pub fn ratio_to(&self, reference: &EnergyEstimate) -> f64 {
        self.total_nj() / reference.total_nj()
    }
}

/// Estimates the per-inference energy of the tiled engine with the given
/// enhancement: `engine power × inference latency`.
pub fn inference_energy(
    cfg: EngineConfig,
    tiling: &Tiling,
    timesteps: u32,
    enhancement: &EngineEnhancement,
) -> EnergyEstimate {
    EnergyEstimate {
        latency: inference_latency(tiling, timesteps, enhancement),
        power_uw: engine_power(cfg, enhancement).total_uw(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiling(n: usize) -> Tiling {
        Tiling::for_network(EngineConfig::PAPER, 784, n)
    }

    #[test]
    fn re_execution_triples_energy() {
        let cfg = EngineConfig::PAPER;
        let t = tiling(400);
        let base = inference_energy(cfg, &t, 100, &EngineEnhancement::none());
        let re = inference_energy(cfg, &t, 100, &EngineEnhancement::re_execution(3));
        assert!(
            (re.ratio_to(&base) - 3.0).abs() < 1e-9,
            "paper Fig. 14(b): 3x energy for re-execution"
        );
    }

    #[test]
    fn energy_scales_with_network_size_like_latency() {
        let cfg = EngineConfig::PAPER;
        let base = inference_energy(cfg, &tiling(400), 100, &EngineEnhancement::none());
        let big = inference_energy(cfg, &tiling(3600), 100, &EngineEnhancement::none());
        assert!((big.ratio_to(&base) - 7.5).abs() < 0.01);
    }

    #[test]
    fn baseline_power_is_positive_and_dominated_by_crossbar() {
        let p = engine_power(EngineConfig::PAPER, &EngineEnhancement::none());
        assert!(p.base_uw > 0.0);
        assert_eq!(p.enhancement_uw, 0.0);
    }

    #[test]
    fn energy_units_are_consistent() {
        let e = EnergyEstimate {
            latency: LatencyEstimate {
                cycles: 500_000,
                clock_period_ns: 2.0,
            },
            power_uw: 1000.0, // 1 mW for 1 ms = 1 µJ
        };
        assert!((e.total_uj() - 1.0).abs() < 1e-9);
    }
}
