//! Structure-of-arrays neuron datapath: the engine's hot-path state.
//!
//! [`crate::neuron_unit::NeuronUnit`] is the *architectural* view of one
//! LIF datapath — membrane register, refractory counter, per-operation
//! fault flags — and remains the fault-injection API and the behavioral
//! oracle (`step_reference`). The hot path, however, advances every
//! neuron every timestep, and an array-of-structs layout forces the
//! compiler through a per-neuron branch chain (refractory? vi faulty?
//! vl faulty? …) that defeats vectorization.
//!
//! [`NeuronLanes`] keeps the same state as parallel lanes:
//!
//! * `vmem: Vec<i32>` and `refrac: Vec<u32>` — contiguous per-neuron
//!   state the fused kernel streams over;
//! * one `Vec<u64>` bitmask per faulty operation (`vi`/`vl`/`vr`/`sg`),
//!   bit `j % 64` of word `j / 64` set when neuron `j` has that fault;
//! * a sparse index list of faulty neurons (`faulty`), rebuilt whenever
//!   the architectural view is synced in.
//!
//! [`NeuronLanes::step_fused`] advances all neurons with a branch-free
//! integrate→leak→compare→reset kernel assuming the fault-free common
//! case (selects instead of branches, so the loop autovectorizes), then
//! re-runs the handful of faulty neurons through the exact
//! [`NeuronUnit::step`] semantics in a sparse patch pass, overwriting
//! their lanes and comparator/spike bits. Comparator and spike results
//! are produced as `u64` bitmask words — the currency of the batched
//! [`crate::engine::SpikeGuard::observe_cycle`] protocol.
//!
//! Synchronization with the architectural view happens at the fault
//! injection boundary ([`sync_from_units`](NeuronLanes::sync_from_units) /
//! [`sync_to_units`](NeuronLanes::sync_to_units)), not per step — see
//! [`crate::engine::ComputeEngine::neurons_mut`].
//!
//! # Batched samples
//!
//! [`BatchLanes`] extends the same layout across samples: a sample-major
//! `n_neurons × batch` block of `vmem`/`refrac` lanes (sample `s` owns the
//! contiguous block `[s·n, (s+1)·n)`) sharing a single plane of op-fault
//! bitmasks (faults live in the hardware, not in the input, so every
//! sample of a batch sees the same faulty neurons). The fused, patch, and
//! inhibition kernels are block-level free functions shared verbatim
//! between the single-sample and batched paths, so the batched pass is
//! equivalent to the single-sample pass by construction — and the
//! cross-path property suite in `tests/proptest_engine_equivalence.rs`
//! pins it.

use crate::neuron_unit::{NeuronHwParams, NeuronOp, NeuronUnit, OpFaults};

/// Number of `u64` bitmask words covering `n` neurons.
#[inline]
pub fn n_words(n: usize) -> usize {
    n.div_ceil(64)
}

/// One plane of per-operation fault bitmasks plus the sparse faulty-index
/// list, shared by the single-sample and batched lane layouts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct OpMasks {
    vi_words: Vec<u64>,
    vl_words: Vec<u64>,
    vr_words: Vec<u64>,
    sg_words: Vec<u64>,
    /// Indices of neurons with at least one op fault, ascending.
    faulty: Vec<u32>,
}

impl OpMasks {
    fn with_words(words: usize) -> Self {
        Self {
            vi_words: vec![0; words],
            vl_words: vec![0; words],
            vr_words: vec![0; words],
            sg_words: vec![0; words],
            faulty: Vec::new(),
        }
    }

    /// Rebuilds every mask from the architectural units.
    fn import(&mut self, units: &[NeuronUnit]) {
        self.vi_words.fill(0);
        self.vl_words.fill(0);
        self.vr_words.fill(0);
        self.sg_words.fill(0);
        self.faulty.clear();
        for (j, u) in units.iter().enumerate() {
            let (w, bit) = (j >> 6, 1_u64 << (j & 63));
            if u.faults.vi {
                self.vi_words[w] |= bit;
            }
            if u.faults.vl {
                self.vl_words[w] |= bit;
            }
            if u.faults.vr {
                self.vr_words[w] |= bit;
            }
            if u.faults.sg {
                self.sg_words[w] |= bit;
            }
            if u.faults.any() {
                self.faulty.push(j as u32);
            }
        }
    }

    /// Marks operation `op` of neuron `j` faulty in the bitmask plane
    /// (the overlay write path of [`MapLanes`]); callers must
    /// [`rebuild_faulty`](Self::rebuild_faulty) afterwards.
    fn set(&mut self, j: usize, op: NeuronOp) {
        let (w, bit) = (j >> 6, 1_u64 << (j & 63));
        match op {
            NeuronOp::VmemIncrease => self.vi_words[w] |= bit,
            NeuronOp::VmemLeak => self.vl_words[w] |= bit,
            NeuronOp::VmemReset => self.vr_words[w] |= bit,
            NeuronOp::SpikeGeneration => self.sg_words[w] |= bit,
        }
    }

    /// Recomputes the sparse faulty-index list from the op bitmask words
    /// (ascending, one entry per neuron with any fault).
    fn rebuild_faulty(&mut self) {
        self.faulty.clear();
        for w in 0..self.vi_words.len() {
            let mut any = self.vi_words[w] | self.vl_words[w] | self.vr_words[w] | self.sg_words[w];
            while any != 0 {
                self.faulty.push((w * 64) as u32 + any.trailing_zeros());
                any &= any - 1;
            }
        }
    }

    /// The fault flags of neuron `j`, reassembled from the op bitmasks.
    fn faults_of(&self, j: usize) -> OpFaults {
        let (w, bit) = (j >> 6, 1_u64 << (j & 63));
        OpFaults {
            vi: self.vi_words[w] & bit != 0,
            vl: self.vl_words[w] & bit != 0,
            vr: self.vr_words[w] & bit != 0,
            sg: self.sg_words[w] & bit != 0,
        }
    }
}

/// The branch-free fused integrate → leak → compare → reset pass over one
/// contiguous block of lanes, packing comparator/spike bits into words.
/// Assumes the fault-free case; faulty lanes are corrected afterwards by
/// [`patch_block`].
fn fused_block(
    vmem: &mut [i32],
    refrac: &mut [u32],
    acc: &[i32],
    v_thresh: &[i32],
    params: &NeuronHwParams,
    cmp_words: &mut [u64],
    spike_words: &mut [u64],
) {
    let chunks = vmem
        .chunks_mut(64)
        .zip(refrac.chunks_mut(64))
        .zip(acc.chunks(64).zip(v_thresh.chunks(64)));
    for (wi, ((vm_c, rf_c), (acc_c, th_c))) in chunks.enumerate() {
        let mut cmp_w = 0_u64;
        let lanes = vm_c
            .iter_mut()
            .zip(rf_c.iter_mut())
            .zip(acc_c.iter().zip(th_c.iter()));
        for (b, ((vm, rf), (&drive, &thresh))) in lanes.enumerate() {
            let r = *rf;
            let active = r == 0;
            let v = ((*vm).saturating_add(drive) - params.v_leak).max(0);
            let hot = active && v >= thresh;
            *vm = if active {
                if hot {
                    params.v_reset
                } else {
                    v
                }
            } else {
                *vm
            };
            *rf = if hot {
                params.t_refrac
            } else {
                r.saturating_sub(1)
            };
            cmp_w |= (hot as u64) << b;
        }
        cmp_words[wi] = cmp_w;
        spike_words[wi] = cmp_w;
    }
}

/// Sparse patch pass over one block: replays each faulty neuron through
/// the exact [`NeuronUnit::step`] semantics from its saved pre-step state
/// (`scratch` entries are `(index, vmem, refrac)`), overwriting its lanes
/// and comparator/spike bits.
#[allow(clippy::too_many_arguments)]
fn patch_block(
    vmem: &mut [i32],
    refrac: &mut [u32],
    acc: &[i32],
    v_thresh: &[i32],
    params: &NeuronHwParams,
    cmp_words: &mut [u64],
    spike_words: &mut [u64],
    masks: &OpMasks,
    scratch: &[(u32, i32, u32)],
) {
    for &(j, vmem0, refrac0) in scratch {
        let j_us = j as usize;
        let mut unit = NeuronUnit {
            vmem: vmem0,
            refrac: refrac0,
            faults: masks.faults_of(j_us),
        };
        let out = unit.step(acc[j_us] as i64, v_thresh[j_us], params);
        vmem[j_us] = unit.vmem;
        refrac[j_us] = unit.refrac;
        let (w, shift) = (j_us >> 6, j_us & 63);
        let mask = !(1_u64 << shift);
        cmp_words[w] = cmp_words[w] & mask | (out.cmp_out as u64) << shift;
        spike_words[w] = spike_words[w] & mask | (out.spike as u64) << shift;
    }
}

/// Saves `(index, vmem, refrac)` snapshots of the faulty lanes into
/// `scratch` before the vector pass clobbers them.
fn snapshot_faulty(
    faulty: &[u32],
    vmem: &[i32],
    refrac: &[u32],
    scratch: &mut Vec<(u32, i32, u32)>,
) {
    scratch.clear();
    for &j in faulty {
        let j_us = j as usize;
        scratch.push((j, vmem[j_us], refrac[j_us]));
    }
}

/// Applies lateral inhibition `total_inh` to every lane of one block whose
/// bit in `fired_words` is clear, mirroring [`NeuronUnit::inhibit`]
/// (floored at 0, skipped while refractory).
fn inhibit_block(vmem: &mut [i32], refrac: &[u32], fired_words: &[u64], total_inh: i32) {
    let chunks = vmem.chunks_mut(64).zip(refrac.chunks(64));
    for (wi, (vm_c, rf_c)) in chunks.enumerate() {
        let fired = fired_words[wi];
        for (b, (vm, &r)) in vm_c.iter_mut().zip(rf_c.iter()).enumerate() {
            let held = (fired >> b) & 1 != 0 || r != 0;
            let v = (*vm - total_inh).max(0);
            *vm = if held { *vm } else { v };
        }
    }
}

/// The engine's structure-of-arrays neuron state (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeuronLanes {
    n: usize,
    vmem: Vec<i32>,
    refrac: Vec<u32>,
    masks: OpMasks,
    /// Pre-step (vmem, refrac) snapshots of the faulty neurons, reused
    /// across steps so the patch pass never allocates.
    patch_scratch: Vec<(u32, i32, u32)>,
}

impl NeuronLanes {
    /// Rested, fault-free lanes for `n` neurons.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            vmem: vec![0; n],
            refrac: vec![0; n],
            masks: OpMasks::with_words(n_words(n)),
            patch_scratch: Vec::new(),
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the lanes hold zero neurons.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of bitmask words per op-fault / comparator mask.
    pub fn words(&self) -> usize {
        self.masks.vi_words.len()
    }

    /// Per-neuron membrane potentials.
    pub fn vmem(&self) -> &[i32] {
        &self.vmem
    }

    /// Clears membrane and refractory state (per-sample reset); fault
    /// masks persist, mirroring [`NeuronUnit::reset_state`].
    pub fn reset_state(&mut self) {
        self.vmem.fill(0);
        self.refrac.fill(0);
    }

    /// Imports state *and* fault flags from the architectural view and
    /// rebuilds the sparse faulty-neuron list. Called once at the fault
    /// injection boundary, not per step.
    ///
    /// # Panics
    ///
    /// Panics if `units.len()` differs from the lane count.
    pub fn sync_from_units(&mut self, units: &[NeuronUnit]) {
        assert_eq!(units.len(), self.n, "lane count");
        for (j, u) in units.iter().enumerate() {
            self.vmem[j] = u.vmem;
            self.refrac[j] = u.refrac;
        }
        self.masks.import(units);
    }

    /// Exports membrane/refractory state back into the architectural
    /// view. Fault flags are *not* written: the architectural view is
    /// authoritative for faults (they are only ever mutated there).
    ///
    /// # Panics
    ///
    /// Panics if `units.len()` differs from the lane count.
    pub fn sync_to_units(&self, units: &mut [NeuronUnit]) {
        assert_eq!(units.len(), self.n, "lane count");
        for (j, u) in units.iter_mut().enumerate() {
            u.vmem = self.vmem[j];
            u.refrac = self.refrac[j];
        }
    }

    /// Advances every neuron one timestep: the fused integrate → leak →
    /// compare → reset kernel.
    ///
    /// `acc` is the per-neuron accumulated synaptic drive, `v_thresh` the
    /// per-neuron thresholds. On return, bit `j` of `cmp_words` holds
    /// neuron `j`'s `Vmem ≥ Vth` comparator output and bit `j` of
    /// `spike_words` its internal spike (pre-guard); bits at or beyond
    /// the neuron count are zero.
    ///
    /// The main pass is branch-free and assumes no op faults; neurons on
    /// the sparse faulty list are then re-run through the exact
    /// [`NeuronUnit::step`] semantics from their pre-step state, patching
    /// lanes and output bits. Equivalence with the per-neuron reference
    /// is property-tested in `tests/proptest_engine_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `acc`/`v_thresh` lengths differ from the lane count or
    /// the word buffers differ from [`words`](Self::words) (exact length,
    /// so no caller-supplied word can be left stale).
    pub fn step_fused(
        &mut self,
        acc: &[i32],
        v_thresh: &[i32],
        params: &NeuronHwParams,
        cmp_words: &mut [u64],
        spike_words: &mut [u64],
    ) {
        assert_eq!(acc.len(), self.n, "drive width");
        assert_eq!(v_thresh.len(), self.n, "threshold width");
        let words = self.words();
        assert_eq!(cmp_words.len(), words, "comparator word width");
        assert_eq!(spike_words.len(), words, "spike word width");

        snapshot_faulty(
            &self.masks.faulty,
            &self.vmem,
            &self.refrac,
            &mut self.patch_scratch,
        );
        fused_block(
            &mut self.vmem,
            &mut self.refrac,
            acc,
            v_thresh,
            params,
            cmp_words,
            spike_words,
        );
        let scratch = std::mem::take(&mut self.patch_scratch);
        patch_block(
            &mut self.vmem,
            &mut self.refrac,
            acc,
            v_thresh,
            params,
            cmp_words,
            spike_words,
            &self.masks,
            &scratch,
        );
        self.patch_scratch = scratch;
    }

    /// Applies lateral inhibition `total_inh` to every neuron whose bit
    /// in `fired_words` is clear, mirroring [`NeuronUnit::inhibit`]
    /// (floored at 0, skipped while refractory).
    ///
    /// # Panics
    ///
    /// Panics if `fired_words` differs from [`words`](Self::words).
    pub fn inhibit_non_fired(&mut self, fired_words: &[u64], total_inh: i32) {
        assert_eq!(fired_words.len(), self.words(), "fired word width");
        inhibit_block(&mut self.vmem, &self.refrac, fired_words, total_inh);
    }

    /// Whether any lane's membrane sits at or above its per-neuron
    /// threshold. The event backend uses this after a comparator-active
    /// cycle to decide whether silent cycles may be skipped (a lane still
    /// at threshold — a reset-faulty burst neuron — must keep stepping).
    ///
    /// # Panics
    ///
    /// Panics if `v_thresh` length differs from the lane count.
    pub fn any_at_or_above(&self, v_thresh: &[i32]) -> bool {
        assert_eq!(v_thresh.len(), self.n, "threshold width");
        self.vmem.iter().zip(v_thresh).any(|(&v, &t)| v >= t)
    }

    /// Advances every lane `k` drive-free timesteps in one pass: each
    /// neuron first burns `r = min(refrac, k)` cycles of refractory
    /// countdown (membrane held, exactly as the fused kernel holds it),
    /// then applies `k − r` floored leak steps collapsed to a single
    /// subtraction via the precomputed cumulative
    /// [`LeakTable`](crate::event::LeakTable) — `max(v − k·d, 0)` equals
    /// `k` sequential `max(v − d, 0)` folds for any `d ≥ 0`, which the
    /// lazy-leak proptest pins against sequential [`step_fused`] cycles.
    /// Leak-faulty (`vl`) lanes hold their membrane, mirroring
    /// [`NeuronUnit::step`]'s faulty path with zero drive.
    ///
    /// Callers guarantee the skipped cycles were genuinely silent (no
    /// drive, no comparator activity); under that contract no spike,
    /// reset, or inhibition could have occurred, so state advance is all
    /// there is to replay.
    pub fn advance_silent(&mut self, k: u32, leak: &crate::event::LeakTable) {
        if k == 0 {
            return;
        }
        for j in 0..self.n {
            let r = self.refrac[j].min(k);
            self.refrac[j] -= r;
            let k_leak = k - r;
            if k_leak == 0 {
                continue;
            }
            if self.masks.vl_words[j >> 6] >> (j & 63) & 1 != 0 {
                continue;
            }
            let v = i64::from(self.vmem[j]) - leak.total(k_leak);
            self.vmem[j] = v.max(0) as i32;
        }
    }
}

/// Sample-major batched lane state: `batch` independent samples' membrane
/// and refractory lanes over the *same* hardware (one shared plane of
/// op-fault masks), stepped one sample block at a time through the exact
/// kernels of [`NeuronLanes`]. See the module docs.
///
/// The resident plane width (`batch`) is the engine's tuned chunk width
/// ([`crate::kernels::EngineTuning::batch_chunk`], measured per host at
/// engine construction and capped by [`crate::engine::MAX_BATCH`]):
/// wider planes amortize per-chunk setup, narrower planes keep the
/// `n × batch` state resident in faster cache levels. Results are
/// bit-identical for every width — samples are independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchLanes {
    n: usize,
    batch: usize,
    /// `n × batch` membrane lanes, sample-major (sample `s` owns
    /// `vmem[s*n..(s+1)*n]`).
    vmem: Vec<i32>,
    refrac: Vec<u32>,
    masks: OpMasks,
    patch_scratch: Vec<(u32, i32, u32)>,
}

impl BatchLanes {
    /// Empty batch lanes; [`configure`](Self::configure) sizes them.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of neurons per sample.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the batch holds zero lanes.
    pub fn is_empty(&self) -> bool {
        self.n * self.batch == 0
    }

    /// Number of samples in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of bitmask words per sample.
    pub fn words(&self) -> usize {
        n_words(self.n)
    }

    /// Sizes the batch for `batch` samples over the hardware described by
    /// `units`, importing the fault masks and resetting all per-sample
    /// state (every sample starts from rest, like
    /// [`NeuronUnit::reset_state`]). Reuses allocations across campaigns.
    pub fn configure(&mut self, units: &[NeuronUnit], batch: usize) {
        let n = units.len();
        self.n = n;
        self.batch = batch;
        self.vmem.clear();
        self.vmem.resize(n * batch, 0);
        self.refrac.clear();
        self.refrac.resize(n * batch, 0);
        let words = n_words(n);
        self.masks.vi_words.resize(words, 0);
        self.masks.vl_words.resize(words, 0);
        self.masks.vr_words.resize(words, 0);
        self.masks.sg_words.resize(words, 0);
        self.masks.import(units);
    }

    /// Sample `s`'s membrane lanes.
    ///
    /// # Panics
    ///
    /// Panics if `s >= batch`.
    pub fn vmem_sample(&self, s: usize) -> &[i32] {
        assert!(s < self.batch, "sample index");
        &self.vmem[s * self.n..(s + 1) * self.n]
    }

    /// Advances sample `s` one timestep through the same fused + sparse
    /// patch kernels as [`NeuronLanes::step_fused`], writing that sample's
    /// comparator/spike bitmask words.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or any buffer width mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn step_fused_sample(
        &mut self,
        s: usize,
        acc: &[i32],
        v_thresh: &[i32],
        params: &NeuronHwParams,
        cmp_words: &mut [u64],
        spike_words: &mut [u64],
    ) {
        assert!(s < self.batch, "sample index");
        assert_eq!(acc.len(), self.n, "drive width");
        assert_eq!(v_thresh.len(), self.n, "threshold width");
        let words = self.words();
        assert_eq!(cmp_words.len(), words, "comparator word width");
        assert_eq!(spike_words.len(), words, "spike word width");
        let vmem = &mut self.vmem[s * self.n..(s + 1) * self.n];
        let refrac = &mut self.refrac[s * self.n..(s + 1) * self.n];
        snapshot_faulty(&self.masks.faulty, vmem, refrac, &mut self.patch_scratch);
        fused_block(vmem, refrac, acc, v_thresh, params, cmp_words, spike_words);
        patch_block(
            vmem,
            refrac,
            acc,
            v_thresh,
            params,
            cmp_words,
            spike_words,
            &self.masks,
            &self.patch_scratch,
        );
    }

    /// Applies lateral inhibition to sample `s` (see
    /// [`NeuronLanes::inhibit_non_fired`]).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or `fired_words` width mismatches.
    pub fn inhibit_non_fired_sample(&mut self, s: usize, fired_words: &[u64], total_inh: i32) {
        assert!(s < self.batch, "sample index");
        assert_eq!(fired_words.len(), self.words(), "fired word width");
        let vmem = &mut self.vmem[s * self.n..(s + 1) * self.n];
        let refrac = &self.refrac[s * self.n..(s + 1) * self.n];
        inhibit_block(vmem, refrac, fired_words, total_inh);
    }
}

/// Map-major multi-map lane state: `k` fault-map variants of the *same*
/// hardware evaluated on the *same* input — per-map membrane/refractory
/// blocks, each with its **own** plane of op-fault bitmasks (the dual of
/// [`BatchLanes`], which varies the input and shares one fault plane).
///
/// This is the neuron half of the engine's multi-map trial batching
/// (`ComputeEngine::run_batch_multi_map`): when a trial group's fault maps
/// touch only neuron operations, the synaptic drive of a cycle is
/// identical across every map, so the engine accumulates it once and
/// steps each map's lanes through the shared fused/patch/inhibit kernels.
///
/// Map `m`'s fault plane is the engine's persisted fault state *plus*
/// that map's overlay sites, so a map block evolves exactly like an
/// engine that had the map injected (property-tested against the per-map
/// scalar reference).
///
/// The resident plane width (`k`) is the engine's tuned chunk width
/// ([`crate::kernels::EngineTuning::map_chunk`], measured per host at
/// engine construction and capped by [`crate::engine::MAX_MAPS`]);
/// as with [`BatchLanes`], every width is bit-identical — maps are
/// independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapLanes {
    n: usize,
    k: usize,
    /// `n × k` membrane lanes, map-major (map `m` owns
    /// `vmem[m*n..(m+1)*n]`).
    vmem: Vec<i32>,
    refrac: Vec<u32>,
    /// One op-fault bitmask plane per map (base faults ∪ overlay).
    masks: Vec<OpMasks>,
    patch_scratch: Vec<(u32, i32, u32)>,
}

impl MapLanes {
    /// Empty multi-map lanes; [`configure`](Self::configure) sizes them.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of neurons per map.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the lanes hold zero blocks.
    pub fn is_empty(&self) -> bool {
        self.n * self.k == 0
    }

    /// Number of fault-map variants resident.
    pub fn n_maps(&self) -> usize {
        self.k
    }

    /// Number of bitmask words per map.
    pub fn words(&self) -> usize {
        n_words(self.n)
    }

    /// Sizes the lanes for one map per `overlays` entry over the hardware
    /// described by `units`: each map's fault plane is `units`' persisted
    /// faults plus that overlay's `(neuron, op)` sites, and every map
    /// starts from rest. Reuses allocations across trial groups.
    ///
    /// # Panics
    ///
    /// Panics if an overlay site's neuron index is out of range.
    pub fn configure(&mut self, units: &[NeuronUnit], overlays: &[Vec<(u32, NeuronOp)>]) {
        let n = units.len();
        let k = overlays.len();
        self.n = n;
        self.k = k;
        self.vmem.clear();
        self.vmem.resize(n * k, 0);
        self.refrac.clear();
        self.refrac.resize(n * k, 0);
        let words = n_words(n);
        self.masks.resize_with(k, || OpMasks::with_words(words));
        for (mask, overlay) in self.masks.iter_mut().zip(overlays) {
            mask.vi_words.resize(words, 0);
            mask.vl_words.resize(words, 0);
            mask.vr_words.resize(words, 0);
            mask.sg_words.resize(words, 0);
            mask.import(units);
            for &(j, op) in overlay {
                assert!(
                    (j as usize) < n,
                    "map site neuron {j} out of range for {n} lanes"
                );
                mask.set(j as usize, op);
            }
            mask.rebuild_faulty();
        }
    }

    /// Clears every map's membrane and refractory state (the sample
    /// boundary); fault planes persist.
    pub fn reset_state(&mut self) {
        self.vmem.fill(0);
        self.refrac.fill(0);
    }

    /// Map `m`'s membrane lanes.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n_maps`.
    pub fn vmem_map(&self, m: usize) -> &[i32] {
        assert!(m < self.k, "map index");
        &self.vmem[m * self.n..(m + 1) * self.n]
    }

    /// Advances map `m` one timestep through the same fused + sparse
    /// patch kernels as [`NeuronLanes::step_fused`], against map `m`'s
    /// fault plane, writing that map's comparator/spike bitmask words.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or any buffer width mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn step_fused_map(
        &mut self,
        m: usize,
        acc: &[i32],
        v_thresh: &[i32],
        params: &NeuronHwParams,
        cmp_words: &mut [u64],
        spike_words: &mut [u64],
    ) {
        assert!(m < self.k, "map index");
        assert_eq!(acc.len(), self.n, "drive width");
        assert_eq!(v_thresh.len(), self.n, "threshold width");
        let words = self.words();
        assert_eq!(cmp_words.len(), words, "comparator word width");
        assert_eq!(spike_words.len(), words, "spike word width");
        let vmem = &mut self.vmem[m * self.n..(m + 1) * self.n];
        let refrac = &mut self.refrac[m * self.n..(m + 1) * self.n];
        let masks = &self.masks[m];
        snapshot_faulty(&masks.faulty, vmem, refrac, &mut self.patch_scratch);
        fused_block(vmem, refrac, acc, v_thresh, params, cmp_words, spike_words);
        patch_block(
            vmem,
            refrac,
            acc,
            v_thresh,
            params,
            cmp_words,
            spike_words,
            masks,
            &self.patch_scratch,
        );
    }

    /// Applies lateral inhibition to map `m` (see
    /// [`NeuronLanes::inhibit_non_fired`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or `fired_words` width mismatches.
    pub fn inhibit_non_fired_map(&mut self, m: usize, fired_words: &[u64], total_inh: i32) {
        assert!(m < self.k, "map index");
        assert_eq!(fired_words.len(), self.words(), "fired word width");
        let vmem = &mut self.vmem[m * self.n..(m + 1) * self.n];
        let refrac = &self.refrac[m * self.n..(m + 1) * self.n];
        inhibit_block(vmem, refrac, fired_words, total_inh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron_unit::NeuronOp;

    fn params() -> NeuronHwParams {
        NeuronHwParams {
            v_reset: 0,
            v_leak: 10,
            t_refrac: 2,
            v_inh: 100,
        }
    }

    /// Drives `n` architectural units and the lanes side by side through
    /// the same random-ish schedule and asserts identical state and
    /// outputs every step.
    fn assert_lockstep(mut units: Vec<NeuronUnit>, drives: impl Fn(usize, usize) -> i32) {
        let p = params();
        let n = units.len();
        let thresholds = vec![500_i32; n];
        let mut lanes = NeuronLanes::new(n);
        lanes.sync_from_units(&units);
        let words = lanes.words();
        let mut cmp = vec![0_u64; words];
        let mut spk = vec![0_u64; words];
        for t in 0..50 {
            let acc: Vec<i32> = (0..n).map(|j| drives(t, j)).collect();
            lanes.step_fused(&acc, &thresholds, &p, &mut cmp, &mut spk);
            for (j, u) in units.iter_mut().enumerate() {
                let out = u.step(acc[j] as i64, thresholds[j], &p);
                let (w, b) = (j >> 6, j & 63);
                assert_eq!((cmp[w] >> b) & 1 != 0, out.cmp_out, "cmp t={t} j={j}");
                assert_eq!((spk[w] >> b) & 1 != 0, out.spike, "spike t={t} j={j}");
                assert_eq!(lanes.vmem[j], u.vmem, "vmem t={t} j={j}");
                assert_eq!(lanes.refrac[j], u.refrac, "refrac t={t} j={j}");
            }
        }
    }

    #[test]
    fn fault_free_lanes_match_units() {
        let units = vec![NeuronUnit::new(); 70];
        assert_lockstep(units, |t, j| ((t * 131 + j * 37) % 400) as i32);
    }

    #[test]
    fn faulty_lanes_match_units_via_patch_pass() {
        let mut units = vec![NeuronUnit::new(); 70];
        units[0].faults.set(NeuronOp::VmemIncrease);
        units[3].faults.set(NeuronOp::VmemLeak);
        units[64].faults.set(NeuronOp::VmemReset);
        units[65].faults.set(NeuronOp::SpikeGeneration);
        units[69].faults.set(NeuronOp::VmemReset);
        units[69].faults.set(NeuronOp::SpikeGeneration);
        assert_lockstep(units, |t, j| ((t * 211 + j * 53) % 600) as i32);
    }

    #[test]
    fn inhibition_matches_units() {
        let p = params();
        let mut units = vec![NeuronUnit::new(); 66];
        for (j, u) in units.iter_mut().enumerate() {
            u.vmem = (j as i32) * 7;
        }
        units[5].refrac = 1;
        let mut lanes = NeuronLanes::new(66);
        lanes.sync_from_units(&units);
        let mut fired_words = vec![0_u64; lanes.words()];
        fired_words[0] |= 1 << 2;
        fired_words[1] |= 1 << 1; // neuron 65
        lanes.inhibit_non_fired(&fired_words, 40);
        for (j, u) in units.iter_mut().enumerate() {
            if j != 2 && j != 65 {
                u.inhibit(40);
            }
        }
        for (j, u) in units.iter().enumerate() {
            assert_eq!(lanes.vmem[j], u.vmem, "j={j}");
        }
        let _ = p;
    }

    #[test]
    fn sync_round_trips_state() {
        let mut units = vec![NeuronUnit::new(); 10];
        units[4].vmem = 77;
        units[4].refrac = 3;
        units[7].faults.set(NeuronOp::SpikeGeneration);
        let mut lanes = NeuronLanes::new(10);
        lanes.sync_from_units(&units);
        assert_eq!(lanes.masks.faulty, vec![7]);
        let mut back = vec![NeuronUnit::new(); 10];
        lanes.sync_to_units(&mut back);
        assert_eq!(back[4].vmem, 77);
        assert_eq!(back[4].refrac, 3);
        // Faults are not exported: the architectural view owns them.
        assert!(!back[7].faults.any());
    }

    #[test]
    fn reset_state_keeps_fault_masks() {
        let mut units = vec![NeuronUnit::new(); 4];
        units[1].faults.set(NeuronOp::VmemReset);
        units[1].vmem = 50;
        let mut lanes = NeuronLanes::new(4);
        lanes.sync_from_units(&units);
        lanes.reset_state();
        assert_eq!(lanes.vmem()[1], 0);
        assert!(lanes.masks.faults_of(1).vr);
        assert_eq!(lanes.masks.faulty, vec![1]);
    }

    #[test]
    fn batch_lanes_match_independent_single_lanes() {
        // Every sample of a batch must evolve exactly like its own
        // isolated NeuronLanes instance over the same faulty hardware.
        let p = params();
        let mut units = vec![NeuronUnit::new(); 70];
        units[0].faults.set(NeuronOp::VmemReset);
        units[65].faults.set(NeuronOp::SpikeGeneration);
        units[69].faults.set(NeuronOp::VmemLeak);
        let thresholds = vec![500_i32; 70];
        let batch_n = 3;
        let mut batch = BatchLanes::new();
        batch.configure(&units, batch_n);
        assert_eq!(batch.batch(), batch_n);
        assert_eq!(batch.words(), 2);
        let mut singles: Vec<NeuronLanes> = (0..batch_n)
            .map(|_| {
                let mut l = NeuronLanes::new(70);
                l.sync_from_units(&units);
                l
            })
            .collect();
        let mut cmp_b = vec![0_u64; 2];
        let mut spk_b = vec![0_u64; 2];
        let mut cmp_s = vec![0_u64; 2];
        let mut spk_s = vec![0_u64; 2];
        for t in 0..40 {
            for (s, single) in singles.iter_mut().enumerate() {
                let acc: Vec<i32> = (0..70)
                    .map(|j| ((t * 131 + j * 37 + s * 71) % 550) as i32)
                    .collect();
                batch.step_fused_sample(s, &acc, &thresholds, &p, &mut cmp_b, &mut spk_b);
                single.step_fused(&acc, &thresholds, &p, &mut cmp_s, &mut spk_s);
                assert_eq!(cmp_b, cmp_s, "cmp t={t} s={s}");
                assert_eq!(spk_b, spk_s, "spike t={t} s={s}");
                // Inhibit off the spike words to also exercise the
                // per-sample inhibition block.
                batch.inhibit_non_fired_sample(s, &spk_b, 40);
                single.inhibit_non_fired(&spk_s, 40);
                assert_eq!(batch.vmem_sample(s), single.vmem(), "vmem t={t} s={s}");
            }
        }
    }

    #[test]
    fn batch_lanes_reconfigure_resets_state() {
        let units = vec![NeuronUnit::new(); 4];
        let p = params();
        let mut batch = BatchLanes::new();
        batch.configure(&units, 2);
        let mut cmp = vec![0_u64; 1];
        let mut spk = vec![0_u64; 1];
        batch.step_fused_sample(1, &[400; 4], &[500; 4], &p, &mut cmp, &mut spk);
        assert!(batch.vmem_sample(1).iter().any(|&v| v > 0));
        // Reconfiguring (next chunk of a campaign) starts from rest again.
        batch.configure(&units, 2);
        assert!(batch.vmem_sample(1).iter().all(|&v| v == 0));
        assert!(!batch.is_empty());
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn map_lanes_match_independent_single_lanes_with_union_faults() {
        // Every map block must evolve exactly like its own NeuronLanes
        // instance whose units carry the base faults ∪ that map's overlay.
        let p = params();
        let mut base_units = vec![NeuronUnit::new(); 70];
        base_units[7].faults.set(NeuronOp::VmemLeak);
        base_units[64].faults.set(NeuronOp::SpikeGeneration);
        let overlays: Vec<Vec<(u32, NeuronOp)>> = vec![
            vec![],
            vec![(0, NeuronOp::VmemReset), (69, NeuronOp::VmemReset)],
            vec![(7, NeuronOp::VmemLeak), (65, NeuronOp::VmemIncrease)],
        ];
        let thresholds = vec![500_i32; 70];
        let mut maps = MapLanes::new();
        maps.configure(&base_units, &overlays);
        assert_eq!(maps.n_maps(), 3);
        assert_eq!(maps.words(), 2);
        let mut singles: Vec<NeuronLanes> = overlays
            .iter()
            .map(|overlay| {
                let mut units = base_units.clone();
                for &(j, op) in overlay {
                    units[j as usize].faults.set(op);
                }
                let mut l = NeuronLanes::new(70);
                l.sync_from_units(&units);
                l
            })
            .collect();
        let mut cmp_m = vec![0_u64; 2];
        let mut spk_m = vec![0_u64; 2];
        let mut cmp_s = vec![0_u64; 2];
        let mut spk_s = vec![0_u64; 2];
        for t in 0..40 {
            // One shared drive per cycle — the whole point of the layout.
            let acc: Vec<i32> = (0..70).map(|j| (t * 131 + j * 37) % 550).collect();
            for (m, single) in singles.iter_mut().enumerate() {
                maps.step_fused_map(m, &acc, &thresholds, &p, &mut cmp_m, &mut spk_m);
                single.step_fused(&acc, &thresholds, &p, &mut cmp_s, &mut spk_s);
                assert_eq!(cmp_m, cmp_s, "cmp t={t} m={m}");
                assert_eq!(spk_m, spk_s, "spike t={t} m={m}");
                maps.inhibit_non_fired_map(m, &spk_m, 40);
                single.inhibit_non_fired(&spk_s, 40);
                assert_eq!(maps.vmem_map(m), single.vmem(), "vmem t={t} m={m}");
            }
        }
    }

    #[test]
    fn map_lanes_reconfigure_resets_state_and_masks() {
        let units = vec![NeuronUnit::new(); 4];
        let p = params();
        let mut maps = MapLanes::new();
        maps.configure(&units, &[vec![(1, NeuronOp::SpikeGeneration)]]);
        assert_eq!(maps.masks[0].faulty, vec![1]);
        let mut cmp = vec![0_u64; 1];
        let mut spk = vec![0_u64; 1];
        maps.step_fused_map(0, &[400; 4], &[500; 4], &p, &mut cmp, &mut spk);
        assert!(maps.vmem_map(0).iter().any(|&v| v > 0));
        // Reconfiguring (next trial group) starts from rest with fresh
        // fault planes — the old overlay must not leak into the new maps.
        maps.configure(&units, &[vec![], vec![(2, NeuronOp::VmemReset)]]);
        assert_eq!(maps.n_maps(), 2);
        assert!(maps.vmem_map(0).iter().all(|&v| v == 0));
        assert!(maps.masks[0].faulty.is_empty());
        assert_eq!(maps.masks[1].faulty, vec![2]);
    }

    #[test]
    fn overlay_duplicates_and_base_overlap_are_idempotent() {
        let mut units = vec![NeuronUnit::new(); 4];
        units[3].faults.set(NeuronOp::VmemReset);
        let mut maps = MapLanes::new();
        maps.configure(
            &units,
            &[vec![
                (3, NeuronOp::VmemReset),
                (2, NeuronOp::VmemLeak),
                (2, NeuronOp::VmemLeak),
            ]],
        );
        assert_eq!(maps.masks[0].faulty, vec![2, 3]);
        assert!(maps.masks[0].faults_of(3).vr);
        assert!(maps.masks[0].faults_of(2).vl);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overlay_out_of_range_neuron_panics() {
        let units = vec![NeuronUnit::new(); 4];
        MapLanes::new().configure(&units, &[vec![(9, NeuronOp::VmemReset)]]);
    }

    #[test]
    fn word_count_covers_partial_words() {
        assert_eq!(n_words(0), 0);
        assert_eq!(n_words(1), 1);
        assert_eq!(n_words(64), 1);
        assert_eq!(n_words(65), 2);
        assert_eq!(NeuronLanes::new(130).words(), 3);
    }
}
