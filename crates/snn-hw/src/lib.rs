//! # snn-hw — bit-accurate SNN accelerator compute-engine model
//!
//! This crate models the digital SNN accelerator of the paper's Fig. 2 and
//! Fig. 5 (based on the ODIN-style design of Frenkel et al. \[6\]):
//!
//! * a **synapse crossbar** of M×N 8-bit weight registers with per-column
//!   accumulation adders ([`crossbar`], [`weight_register`]),
//! * **LIF neuron datapaths** implementing the four operations the paper's
//!   fault model targets — `Vmem increase`, `Vmem leak`, `Vmem reset`, and
//!   `spike generation` — with per-operation fault flags ([`neuron_unit`]),
//! * the **compute engine** tying them together with direct lateral
//!   inhibition and integer arithmetic in weight-code units ([`engine`]),
//! * **tiling/mapping** of logical networks (784×N400…N3600) onto the
//!   physical 256×256 engine ([`mapping`]),
//! * and **cost models** for area, power/energy, and latency composed from
//!   a gate-equivalent component library ([`components`], [`area`],
//!   [`energy`], [`latency`], [`report`]) — the stand-in for the paper's
//!   Cadence Genus 65 nm synthesis flow (see `DESIGN.md` for the
//!   calibration rationale).
//!
//! The engine exposes two extension points used by the SoftSNN mitigation
//! in `softsnn-core`:
//!
//! * [`engine::WeightReadPath`] — intercepts every weight-register read
//!   (the Bound-and-Protect comparator+mux sits here), and
//! * [`engine::SpikeGuard`] — observes each neuron's `Vmem ≥ Vth`
//!   comparator output and can veto spike generation (the faulty-reset
//!   monitor sits here).
//!
//! ```
//! use snn_hw::engine::{ComputeEngine, DirectRead, NoGuard};
//! use snn_sim::quant::QuantizedNetwork;
//! use snn_sim::{config::SnnConfig, network::Network, rng::seeded_rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SnnConfig::builder().n_inputs(16).n_neurons(4).build()?;
//! let net = Network::new(cfg, &mut seeded_rng(0));
//! let qn = QuantizedNetwork::from_network_default(&net);
//! let mut engine = ComputeEngine::for_network(&qn)?;
//! let fired = engine.step(&[0, 1, 2], &DirectRead, &mut NoGuard);
//! assert!(fired.len() <= 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod backend;
pub mod components;
pub mod crossbar;
pub mod energy;
pub mod engine;
pub mod error;
pub mod event;
pub mod kernels;
pub mod latency;
pub mod learning_unit;
pub mod mapping;
pub mod neuron_lanes;
pub mod neuron_unit;
pub mod params;
pub mod report;
pub mod weight_register;

pub use backend::{AnyBackend, EngineBackend, EngineBackendKind};
pub use crossbar::Crossbar;
pub use engine::{ComputeEngine, DirectRead, NoGuard, ResolvedPath, SpikeGuard, WeightReadPath};
pub use error::HwError;
pub use event::{EventEngine, LeakTable};
pub use kernels::{AccumKernel, EngineTuning, RowBlock};
pub use mapping::Tiling;
pub use neuron_lanes::NeuronLanes;
pub use neuron_unit::{NeuronOp, NeuronUnit, OpFaults};
pub use params::EngineConfig;
