//! Synthesis-report emulation.
//!
//! The paper obtains timing/power/area through Cadence Genus with a 65 nm
//! library (Fig. 12). This module renders the analytical cost models into
//! a Genus-flavoured text report so the experiment binaries can emit the
//! same artifacts the paper's flow produces (area/timing/power `.txt`).

use crate::area::{engine_area, AreaBreakdown};
use crate::components::EngineEnhancement;
use crate::energy::{engine_power, PowerBreakdown};
use crate::latency::{inference_latency, LatencyEstimate};
use crate::mapping::Tiling;
use crate::params::EngineConfig;
use std::fmt;

/// A synthesis-style report for one engine configuration.
///
/// # Examples
///
/// ```
/// use snn_hw::report::SynthesisReport;
/// use snn_hw::components::EngineEnhancement;
/// use snn_hw::params::EngineConfig;
/// use snn_hw::mapping::Tiling;
///
/// let tiling = Tiling::for_network(EngineConfig::PAPER, 784, 400);
/// let r = SynthesisReport::generate(
///     EngineConfig::PAPER,
///     &EngineEnhancement::none(),
///     &tiling,
///     100,
/// );
/// assert!(r.to_string().contains("Area Report"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Engine geometry the report covers.
    pub config: EngineConfig,
    /// Name of the design variant.
    pub variant: String,
    /// Area breakdown.
    pub area: AreaBreakdown,
    /// Power breakdown.
    pub power: PowerBreakdown,
    /// Per-inference latency.
    pub latency: LatencyEstimate,
}

impl SynthesisReport {
    /// Computes every section of the report from the cost models.
    pub fn generate(
        config: EngineConfig,
        enhancement: &EngineEnhancement,
        tiling: &Tiling,
        timesteps: u32,
    ) -> Self {
        Self {
            config,
            variant: enhancement.name.clone(),
            area: engine_area(config, enhancement),
            power: engine_power(config, enhancement),
            latency: inference_latency(tiling, timesteps, enhancement),
        }
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=====================================================")?;
        writeln!(f, " Design: snn-compute-engine / {}", self.variant)?;
        writeln!(
            f,
            " Geometry: {}x{} synapses, {} neurons, {}-bit weights",
            self.config.rows, self.config.cols, self.config.cols, self.config.weight_bits
        )?;
        writeln!(f, " Technology: 65nm (representative analytical model)")?;
        writeln!(f, "=====================================================")?;
        writeln!(f, " Area Report")?;
        writeln!(
            f,
            "   synapse array : {:>14.0} GE",
            self.area.synapse_array_ge
        )?;
        writeln!(f, "   neurons       : {:>14.0} GE", self.area.neurons_ge)?;
        writeln!(f, "   control       : {:>14.0} GE", self.area.control_ge)?;
        writeln!(
            f,
            "   enhancements  : {:>14.0} GE",
            self.area.enhancement_ge
        )?;
        writeln!(
            f,
            "   total         : {:>14.0} GE ({:.3} mm2)",
            self.area.total_ge(),
            self.area.total_mm2()
        )?;
        writeln!(f, " Timing Report")?;
        writeln!(
            f,
            "   clock period  : {:>10.3} ns",
            self.latency.clock_period_ns
        )?;
        writeln!(f, "   cycles/infer  : {:>10}", self.latency.cycles)?;
        writeln!(f, "   latency/infer : {:>10.2} us", self.latency.total_us())?;
        writeln!(f, " Power Report")?;
        writeln!(f, "   baseline      : {:>10.1} uW", self.power.base_uw)?;
        writeln!(
            f,
            "   enhancements  : {:>10.1} uW",
            self.power.enhancement_uw
        )?;
        writeln!(f, "   total         : {:>10.2} mW", self.power.total_mw())?;
        writeln!(f, "=====================================================")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sections() {
        let tiling = Tiling::for_network(EngineConfig::PAPER, 784, 400);
        let r = SynthesisReport::generate(
            EngineConfig::PAPER,
            &EngineEnhancement::none(),
            &tiling,
            100,
        );
        let s = r.to_string();
        for section in ["Area Report", "Timing Report", "Power Report", "Baseline"] {
            assert!(s.contains(section), "missing section {section}");
        }
    }

    #[test]
    fn report_reflects_variant_name() {
        let tiling = Tiling::for_network(EngineConfig::PAPER, 784, 400);
        let r = SynthesisReport::generate(
            EngineConfig::PAPER,
            &EngineEnhancement::re_execution(3),
            &tiling,
            100,
        );
        assert!(r.to_string().contains("Re-execution x3"));
    }
}
