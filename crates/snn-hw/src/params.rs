//! Physical engine configuration.

/// Geometry and precision of the physical compute engine (the paper: a
/// 256×256 synapse crossbar with 256 neurons at 8-bit weight precision).
///
/// Logical networks larger than the physical engine are time-multiplexed
/// onto it; see [`crate::mapping::Tiling`].
///
/// # Examples
///
/// ```
/// use snn_hw::params::EngineConfig;
///
/// let cfg = EngineConfig::default();
/// assert_eq!((cfg.rows, cfg.cols, cfg.weight_bits), (256, 256, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Number of physical synapse rows (inputs per pass).
    pub rows: usize,
    /// Number of physical synapse columns (= neurons).
    pub cols: usize,
    /// Weight register precision in bits.
    pub weight_bits: u8,
}

impl EngineConfig {
    /// The paper's engine: 256×256 synapses, 256 neurons, 8-bit weights.
    pub const PAPER: EngineConfig = EngineConfig {
        rows: 256,
        cols: 256,
        weight_bits: 8,
    };

    /// Number of physical synapses.
    pub fn n_synapses(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_engine_has_64k_synapses() {
        assert_eq!(EngineConfig::PAPER.n_synapses(), 65_536);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(EngineConfig::default(), EngineConfig::PAPER);
    }
}
