//! The SNN compute engine: crossbar + neuron datapaths + lateral
//! inhibition, operating in integer weight-code units.
//!
//! The engine is deliberately *logical-size*: it simulates the full M×N
//! synapse array of the deployed network bit-accurately, while the
//! *physical* 256×256 geometry only affects the latency/energy/area models
//! (time-multiplexing changes cost, not function — see
//! [`crate::mapping`]).
//!
//! # Hot path
//!
//! [`ComputeEngine::step`] and [`ComputeEngine::run_sample_into`] are the
//! simulation hot path of every fault-injection campaign, and are built to
//! be allocation-free and autovectorizable:
//!
//! * weight reads go through a kernel resolved once per step or sample
//!   ([`ResolvedPath`]) — a pure widening add, a branchless
//!   compare/select, or a 256-entry lookup table — instead of a
//!   per-element closure call; non-identity kernels additionally
//!   accumulate from a cached transformed-crossbar image (rebuilt only
//!   when the registers or the transform change), so the bounded/LUT
//!   paths run at direct-add speed;
//! * neuron state lives in structure-of-arrays lanes
//!   ([`crate::neuron_lanes::NeuronLanes`]): a branch-free fused
//!   integrate→leak→compare kernel covers the fault-free common case,
//!   with faulty neurons replayed in a sparse patch pass;
//! * comparator, spike, and fired results are `u64` bitmask words, so
//!   spike guards observe a whole cycle at once
//!   ([`SpikeGuard::observe_cycle`]) instead of one call per neuron, and
//!   lateral inhibition and spike counting are driven by the fired mask;
//! * the `fired` list, inhibition, accumulators, and per-neuron spike
//!   counters are scratch buffers owned by the engine and reused across
//!   steps and samples.
//!
//! # Batched samples
//!
//! [`ComputeEngine::run_batch_into`] presents many encoded samples in one
//! pass: per-sample membrane/refractory state lives in sample-major
//! [`crate::neuron_lanes::BatchLanes`] blocks, the transformed-crossbar
//! image stays hot across every sample of a timestep, identical
//! active-row sets are accumulated once and copied, and the accumulate
//! kernel is row-blocked with the lane formulation and block size the
//! engine's [`crate::kernels::EngineTuning`] measured at construction
//! (every choice is bit-identical — see [`crate::kernels`]). Each sample is
//! evaluated *independently* — state reset first, spike guard cloned from
//! the caller's prototype — so a batched run is spike-for-spike identical
//! to per-sample [`run_sample_reference`](ComputeEngine::run_sample_reference)
//! calls that clone the guard the same way (property-tested).
//!
//! # Campaign-level crossbar-image reuse
//!
//! Fault-injection campaigns mutate a few registers per trial; the
//! transformed-crossbar image is patched in place at the injection API
//! ([`ComputeEngine::flip_weight_bit`]) instead of being rebuilt, and
//! parameter reloads restore the cached *clean* image with a copy. A
//! [`ReadCacheStats`] counter hook exposes rebuild/restore/patch counts so
//! tests can pin the reuse behaviour.
//!
//! The original per-neuron formulation is retained as
//! [`ComputeEngine::step_reference`] / [`ComputeEngine::run_sample_reference`];
//! property tests assert the optimized path is spike-for-spike identical —
//! including under stateful guards and neuron-op fault maps.

use crate::crossbar::Crossbar;
use crate::error::HwError;
use crate::kernels::{self, EngineTuning};
use crate::neuron_lanes::{n_words, BatchLanes, MapLanes, NeuronLanes};
use crate::neuron_unit::{NeuronHwParams, NeuronOp, NeuronUnit, OpFaults};
use crate::params::EngineConfig;
use snn_sim::quant::QuantizedNetwork;
use snn_sim::spike::SpikeTrain;

/// Models the circuitry between a weight register and the column adder.
///
/// The baseline engine reads registers directly ([`DirectRead`]); the
/// SoftSNN-enhanced engine inserts a comparator + multiplexer here
/// (weight bounding). Implementations must be pure combinational logic:
/// same input code → same output code. That purity is what makes the
/// engine's table-driven hot path valid: [`table`](Self::table) captures
/// the entire input→output function in 256 entries.
pub trait WeightReadPath {
    /// Transforms a raw register code into the value fed to the adder.
    fn read(&self, code: u8) -> u8;

    /// The full 256-entry transfer function of this read path.
    ///
    /// The default implementation evaluates [`read`](Self::read) for every
    /// code; stateless paths get this for free, and paths with stored
    /// configuration (e.g. bounding registers) may override it with a
    /// cached table.
    fn table(&self) -> [u8; 256] {
        let mut t = [0_u8; 256];
        for (code, slot) in t.iter_mut().enumerate() {
            *slot = self.read(code as u8);
        }
        t
    }

    /// Whether this path is the identity function. Identity paths skip the
    /// table entirely and accumulate with a pure widening add.
    fn is_identity(&self) -> bool {
        false
    }

    /// If this path is a comparator + multiplexer (`code > threshold →
    /// default` — the shape of Eq. 1 weight bounding), its two hardware
    /// register values. The engine lowers such paths to a branchless
    /// compare/select kernel, which vectorizes where a general table
    /// gather does not.
    fn bound_params(&self) -> Option<(u8, u8)> {
        None
    }
}

/// The accumulation kernel resolved from a [`WeightReadPath`], once per
/// step or sample (not per element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadKernel {
    /// Identity path: pure widening add.
    Direct,
    /// Comparator + mux: branchless compare/select.
    Bounded {
        /// `wgh_th` register.
        threshold: u8,
        /// `wgh_def` register.
        default: u8,
    },
    /// Arbitrary combinational logic: the 256-entry table stored in
    /// [`ResolvedPath::table`].
    Table,
}

/// A [`WeightReadPath`] lowered to its accumulation kernel once, for reuse
/// across many [`ComputeEngine::step_resolved`] calls.
///
/// [`ComputeEngine::step`] resolves the path on every call — cheap for
/// identity/bounded paths, but a 256-entry `read` sweep for table paths.
/// Per-step drivers (workbench-style loops presenting one timestep at a
/// time) should resolve once and reuse:
///
/// ```
/// use snn_hw::engine::{ComputeEngine, DirectRead, NoGuard, ResolvedPath};
/// use snn_sim::{config::SnnConfig, network::Network, rng::seeded_rng};
/// use snn_sim::quant::QuantizedNetwork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SnnConfig::builder().n_inputs(8).n_neurons(2).build()?;
/// let net = Network::new(cfg, &mut seeded_rng(1));
/// let qn = QuantizedNetwork::from_network_default(&net);
/// let mut engine = ComputeEngine::for_network(&qn)?;
/// let resolved = ResolvedPath::new(&DirectRead);
/// for _ in 0..10 {
///     engine.step_resolved(&[0, 3, 5], &resolved, &mut NoGuard);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResolvedPath {
    pub(crate) kernel: ReadKernel,
    /// The 256-entry transfer function; meaningful only for
    /// [`ReadKernel::Table`] (stored inline so resolving never
    /// allocates).
    pub(crate) table: [u8; 256],
}

impl ResolvedPath {
    /// Resolves `path` to its accumulation kernel (allocation-free).
    pub fn new<P: WeightReadPath>(path: &P) -> Self {
        if path.is_identity() {
            Self {
                kernel: ReadKernel::Direct,
                table: [0; 256],
            }
        } else if let Some((threshold, default)) = path.bound_params() {
            Self {
                kernel: ReadKernel::Bounded { threshold, default },
                table: [0; 256],
            }
        } else {
            Self {
                kernel: ReadKernel::Table,
                table: path.table(),
            }
        }
    }
}

/// The baseline read path: registers feed the adders unmodified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectRead;

impl WeightReadPath for DirectRead {
    #[inline]
    fn read(&self, code: u8) -> u8 {
        code
    }

    #[inline]
    fn is_identity(&self) -> bool {
        true
    }
}

/// Observes each neuron's `Vmem ≥ Vth` comparator output every cycle and
/// can veto spike generation.
///
/// The SoftSNN neuron protection (faulty-reset monitor) is implemented as
/// a `SpikeGuard` in `softsnn-core`. The guard is stateful: per the paper,
/// a tripped monitor keeps spike generation disabled until the neuron's
/// parameters are replaced ([`SpikeGuard::on_param_reload`]).
///
/// The engine drives guards through the batched
/// [`observe_cycle`](Self::observe_cycle) protocol; implementors only
/// need [`allow_spike`](Self::allow_spike) (the default batched form
/// forwards to it), but word-level implementations turn the guard from a
/// per-neuron call chain into a few ops per 64 neurons.
pub trait SpikeGuard {
    /// Called once per neuron per cycle with that cycle's comparator
    /// output. Returns whether the neuron may emit a spike this cycle.
    fn allow_spike(&mut self, neuron: usize, cmp_out: bool) -> bool;

    /// Called when the engine reloads parameters (heals monitor latches).
    fn on_param_reload(&mut self) {}

    /// Batched per-cycle observation: bit `j % 64` of `cmp_words[j / 64]`
    /// is neuron `j`'s comparator output; the guard must write neuron
    /// `j`'s allow/veto decision to the same bit of `allow_words`,
    /// fully overwriting every word it covers (incoming contents are
    /// unspecified). The engine guarantees `cmp_words` padding bits at or
    /// beyond `n_neurons` are zero, and ignores the corresponding
    /// `allow_words` bits.
    ///
    /// The default implementation forwards to
    /// [`allow_spike`](Self::allow_spike) in ascending neuron order, so
    /// every existing guard behaves identically under batching.
    fn observe_cycle(&mut self, cmp_words: &[u64], allow_words: &mut [u64], n_neurons: usize) {
        for (w, (&cmp, allow)) in cmp_words.iter().zip(allow_words.iter_mut()).enumerate() {
            let base = w * 64;
            if base >= n_neurons {
                *allow = 0;
                continue;
            }
            let lanes = (n_neurons - base).min(64);
            let mut out = 0_u64;
            for b in 0..lanes {
                let allowed = self.allow_spike(base + b, (cmp >> b) & 1 != 0);
                out |= (allowed as u64) << b;
            }
            *allow = out;
        }
    }
}

/// A guard that never vetoes (the baseline engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoGuard;

impl SpikeGuard for NoGuard {
    #[inline]
    fn allow_spike(&mut self, _neuron: usize, _cmp_out: bool) -> bool {
        true
    }

    #[inline]
    fn observe_cycle(&mut self, _cmp_words: &[u64], allow_words: &mut [u64], _n_neurons: usize) {
        allow_words.fill(u64::MAX);
    }
}

/// Which representation currently holds the authoritative neuron
/// *state* (membrane + refractory). Fault flags are always authoritative
/// in the architectural units — nothing else mutates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StateHome {
    /// The SoA lanes are current (after optimized steps).
    Lanes,
    /// The `Vec<NeuronUnit>` view is current (after injection /
    /// reference steps).
    Units,
}

/// Which read-path transform the engine's transformed-crossbar image
/// currently holds. Read paths are pure combinational logic, so the
/// transformed codes only change when the transform or the register
/// contents change — the cache is invalidated at the crossbar mutation
/// boundary ([`ComputeEngine::crossbar_mut`] / parameter reload), and
/// non-identity kernels then accumulate at direct-add speed.
///
/// For [`ReadKernel::Table`] kernels the cached transform additionally
/// includes the table contents, kept in
/// [`ComputeEngine::read_cache_table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadCacheKey {
    /// Cache contents are stale (crossbar mutated, or never built).
    Invalid,
    /// Image of `code > threshold → default` over the current registers.
    Bounded {
        /// `wgh_th` register.
        threshold: u8,
        /// `wgh_def` register.
        default: u8,
    },
    /// Image of the table in `read_cache_table` over the registers.
    Table,
}

/// Rebuild/restore/patch counters of the transformed-crossbar image cache
/// — the observation hook campaign-reuse tests assert against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCacheStats {
    /// Full image rebuilds (O(rows × cols) transform sweeps).
    pub rebuilds: u64,
    /// Restores of the cached clean image at parameter reload (a copy,
    /// no transform work).
    pub restores: u64,
    /// Single-register in-place patches applied by
    /// [`ComputeEngine::flip_weight_bit`].
    pub patches: u64,
}

/// A neuron-only fault map in engine terms: the `(neuron, op)` sites one
/// trial's soft errors strike. This is the unit of
/// [`ComputeEngine::run_batch_multi_map`]'s map axis — campaign layers
/// lower their fault-map types to this shape at the call boundary (the
/// engine crate cannot name them).
pub type NeuronFaultOverlay = Vec<(u32, NeuronOp)>;

/// Cap on samples interleaved per batched chunk: bounds the resident
/// `n_neurons × MAX_BATCH` lane state and drive planes while keeping the
/// transformed-crossbar image hot across the whole chunk at each
/// timestep. [`ComputeEngine::run_batch_into`] accepts any number of
/// samples and chunks internally (the last chunk may be ragged); the
/// effective chunk width is the engine's measured
/// [`EngineTuning::batch_chunk`], clamped to this cap.
pub const MAX_BATCH: usize = 16;

/// Per-sample spike-count planes written by
/// [`ComputeEngine::run_batch_into`]: `counts(s)` is what
/// [`ComputeEngine::run_sample`] would have returned for sample `s`.
/// Reusable across batches — the engine resizes it without reallocating
/// when shapes repeat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchResult {
    n_neurons: usize,
    n_samples: usize,
    /// Sample-major planes: sample `s` owns `[s·n, (s+1)·n)`.
    counts: Vec<u32>,
}

impl BatchResult {
    /// An empty result; [`ComputeEngine::run_batch_into`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples in the last batch.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Whether the result holds no samples.
    pub fn is_empty(&self) -> bool {
        self.n_samples == 0
    }

    /// Per-neuron output spike counts of sample `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_samples`.
    pub fn counts(&self, s: usize) -> &[u32] {
        assert!(s < self.n_samples, "sample index");
        &self.counts[s * self.n_neurons..(s + 1) * self.n_neurons]
    }

    /// Iterator over per-sample count slices, in sample order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.counts
            .chunks(self.n_neurons.max(1))
            .take(self.n_samples)
    }

    /// Sizes the planes and zeroes every counter (backend-internal).
    pub(crate) fn reset(&mut self, n_neurons: usize, n_samples: usize) {
        self.n_neurons = n_neurons;
        self.n_samples = n_samples;
        self.counts.clear();
        self.counts.resize(n_neurons * n_samples, 0);
    }

    /// Mutable plane of sample `s` (backend-internal).
    pub(crate) fn counts_mut(&mut self, s: usize) -> &mut [u32] {
        &mut self.counts[s * self.n_neurons..(s + 1) * self.n_neurons]
    }
}

/// Cap on fault maps interleaved per multi-map chunk: bounds the
/// resident `n_neurons × MAX_MAPS` per-map lane state.
/// [`ComputeEngine::run_batch_multi_map`] accepts any number of maps and
/// chunks internally (the last chunk may be ragged); the effective chunk
/// width is the engine's measured [`EngineTuning::map_chunk`], clamped
/// to this cap.
pub const MAX_MAPS: usize = 16;

/// Per-(map, sample) spike-count planes written by
/// [`ComputeEngine::run_batch_multi_map`]: `counts(m, s)` is what
/// [`ComputeEngine::run_sample`] would have returned for sample `s` on an
/// engine with map `m` injected. Reusable across trial groups — the
/// engine resizes it without reallocating when shapes repeat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiMapResult {
    n_neurons: usize,
    n_samples: usize,
    n_maps: usize,
    /// Map-major, then sample-major planes: map `m`, sample `s` owns
    /// `[(m·S + s)·n, (m·S + s + 1)·n)`.
    counts: Vec<u32>,
}

impl MultiMapResult {
    /// An empty result; [`ComputeEngine::run_batch_multi_map`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fault maps in the last trial group.
    pub fn n_maps(&self) -> usize {
        self.n_maps
    }

    /// Number of samples per map.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Whether the result holds no planes.
    pub fn is_empty(&self) -> bool {
        self.n_maps * self.n_samples == 0
    }

    /// Per-neuron output spike counts of sample `s` under map `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n_maps` or `s >= n_samples`.
    pub fn counts(&self, m: usize, s: usize) -> &[u32] {
        assert!(m < self.n_maps, "map index");
        assert!(s < self.n_samples, "sample index");
        let base = (m * self.n_samples + s) * self.n_neurons;
        &self.counts[base..base + self.n_neurons]
    }

    /// Sizes the planes and zeroes every counter (backend-internal).
    pub(crate) fn reset(&mut self, n_neurons: usize, n_samples: usize, n_maps: usize) {
        self.n_neurons = n_neurons;
        self.n_samples = n_samples;
        self.n_maps = n_maps;
        self.counts.clear();
        self.counts.resize(n_neurons * n_samples * n_maps, 0);
    }

    /// Mutable plane of (map `m`, sample `s`) (backend-internal).
    pub(crate) fn counts_mut(&mut self, m: usize, s: usize) -> &mut [u32] {
        let base = (m * self.n_samples + s) * self.n_neurons;
        &mut self.counts[base..base + self.n_neurons]
    }
}

/// One permanently stuck weight-register bit, installed on the engine
/// (see [`ComputeEngine::install_stuck_bits`]). Unlike a transient flip
/// ([`ComputeEngine::flip_weight_bit`]), a stuck bit survives parameter
/// reloads: every [`reload_parameters`](ComputeEngine::reload_parameters)
/// re-manifests it onto the freshly restored clean image.
///
/// This is the engine-side mirror of the fault model's stuck-at site type
/// (the dependency points the other way, so the fault crates convert into
/// this type when installing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckWeightBit {
    /// Crossbar row (input index).
    pub row: usize,
    /// Crossbar column (neuron index).
    pub col: usize,
    /// Bit position (0 = LSB).
    pub bit: u8,
    /// The value the bit is stuck at.
    pub stuck_at: bool,
}

impl StuckWeightBit {
    /// The register code as it would actually be read with this bit
    /// stuck.
    fn apply(self, code: u8) -> u8 {
        if self.stuck_at {
            code | (1 << self.bit)
        } else {
            code & !(1 << self.bit)
        }
    }
}

/// The compute engine of the paper's Fig. 5, in integer arithmetic.
///
/// # Examples
///
/// ```
/// use snn_hw::engine::{ComputeEngine, DirectRead, NoGuard};
/// use snn_sim::{config::SnnConfig, network::Network, rng::seeded_rng};
/// use snn_sim::quant::QuantizedNetwork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SnnConfig::builder().n_inputs(8).n_neurons(2).build()?;
/// let net = Network::new(cfg, &mut seeded_rng(1));
/// let qn = QuantizedNetwork::from_network_default(&net);
/// let mut engine = ComputeEngine::for_network(&qn)?;
/// engine.step(&[0, 3, 5], &DirectRead, &mut NoGuard);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ComputeEngine {
    physical: EngineConfig,
    n_inputs: usize,
    n_neurons: usize,
    crossbar: Crossbar,
    v_thresh: Vec<i32>,
    hw: NeuronHwParams,
    /// Architectural per-neuron view: the fault-injection API and the
    /// state store of the reference path. Membrane/refractory values here
    /// are refreshed from the lanes at the injection boundary
    /// ([`neurons_mut`](Self::neurons_mut)) — see [`StateHome`].
    neurons: Vec<NeuronUnit>,
    /// SoA hot-path state (see [`crate::neuron_lanes`]).
    lanes: NeuronLanes,
    state_home: StateHome,
    clean_codes: Vec<u8>,
    /// Row-major image of the crossbar codes after the current
    /// non-identity read-path transform (see [`ReadCacheKey`]). Allocated
    /// lazily on first non-identity use, so `DirectRead`-only engines
    /// (and their per-trial campaign clones) never pay for it.
    read_cache: Vec<u8>,
    read_cache_key: ReadCacheKey,
    /// The table the cache image was built with (valid iff
    /// `read_cache_key == ReadCacheKey::Table`).
    read_cache_table: [u8; 256],
    /// The transform image over the *clean* register contents, captured
    /// when a rebuild happens on an unmutated crossbar. Parameter reloads
    /// restore the read cache from it with a copy instead of invalidating
    /// — the campaign-trial (reload → inject → evaluate) cycle then never
    /// re-runs the full transform.
    clean_cache: Vec<u8>,
    clean_cache_key: ReadCacheKey,
    clean_cache_table: [u8; 256],
    /// Permanent stuck-at faults (see [`StuckWeightBit`]): re-applied to
    /// the registers at the end of every parameter reload, so healing
    /// never clears them — the stuck-at persistence contract.
    stuck_bits: Vec<StuckWeightBit>,
    /// Whether any register may differ from `clean_codes` (set at the
    /// mutation APIs, cleared by parameter reload).
    crossbar_dirty: bool,
    cache_stats: ReadCacheStats,
    /// Bumped by every API that can change what the crossbar's resolved
    /// read path yields (`crossbar_mut`, `flip_weight_bit`,
    /// `reload_parameters`). Derived backends (the event-driven engine's
    /// compiled adjacency lists) key their caches on this counter, so a
    /// reload-heal or an injected fault can never be served from a stale
    /// compilation.
    mutation_epoch: u64,
    /// Accumulate-kernel and chunk-width tuning (see
    /// [`crate::kernels::EngineTuning`]): measured at construction by
    /// default, inherited by campaign clones. Bit-identical for every
    /// value — tuning trades time, never results.
    tuning: EngineTuning,
    // Scratch buffers reused across steps/samples (the hot path never
    // allocates).
    acc: Vec<i32>,
    fired: Vec<u32>,
    cmp_words: Vec<u64>,
    spike_words: Vec<u64>,
    allow_words: Vec<u64>,
    fired_words: Vec<u64>,
    counts: Vec<u32>,
    /// Batched-pass state and drive planes (sized on first
    /// [`run_batch_into`](Self::run_batch_into) use).
    batch: BatchLanes,
    batch_acc: Vec<i32>,
    /// Multi-map pass state (sized on first
    /// [`run_batch_multi_map`](Self::run_batch_multi_map) use).
    map_lanes: MapLanes,
}

impl ComputeEngine {
    /// Builds an engine for a quantized network using the paper's physical
    /// geometry ([`EngineConfig::PAPER`]).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if the network fails validation.
    pub fn for_network(qn: &QuantizedNetwork) -> Result<Self, HwError> {
        Self::with_config(EngineConfig::PAPER, qn)
    }

    /// Builds an engine with an explicit physical geometry, autotuning
    /// the accumulate kernels for this host (see
    /// [`EngineTuning::autotune`]); [`with_tuning`](Self::with_tuning) is
    /// the fixed-choice escape hatch.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if the network fails validation.
    pub fn with_config(physical: EngineConfig, qn: &QuantizedNetwork) -> Result<Self, HwError> {
        Self::with_tuning(
            physical,
            qn,
            EngineTuning::autotune(qn.n_inputs, qn.n_neurons),
        )
    }

    /// Builds an engine with an explicit physical geometry and an
    /// explicit [`EngineTuning`] — no construction-time measurement.
    /// Results are bit-identical for every tuning value (only timings
    /// differ), so this exists for deterministic construction cost and
    /// for the tuning-invariance regression tests, not for correctness.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if the network fails validation.
    pub fn with_tuning(
        physical: EngineConfig,
        qn: &QuantizedNetwork,
        tuning: EngineTuning,
    ) -> Result<Self, HwError> {
        qn.validate().map_err(|e| HwError::InvalidNetwork {
            detail: e.to_string(),
        })?;
        let crossbar = Crossbar::from_codes(qn.n_inputs, qn.n_neurons, &qn.codes)?;
        let words = n_words(qn.n_neurons);
        Ok(Self {
            physical,
            n_inputs: qn.n_inputs,
            n_neurons: qn.n_neurons,
            crossbar,
            v_thresh: qn.neuron.v_thresh.clone(),
            hw: NeuronHwParams {
                v_reset: qn.neuron.v_reset,
                v_leak: qn.neuron.v_leak,
                t_refrac: qn.neuron.t_refrac,
                v_inh: qn.neuron.v_inh,
            },
            neurons: vec![NeuronUnit::new(); qn.n_neurons],
            lanes: NeuronLanes::new(qn.n_neurons),
            state_home: StateHome::Lanes,
            clean_codes: qn.codes.clone(),
            read_cache: Vec::new(),
            read_cache_key: ReadCacheKey::Invalid,
            read_cache_table: [0; 256],
            clean_cache: Vec::new(),
            clean_cache_key: ReadCacheKey::Invalid,
            clean_cache_table: [0; 256],
            stuck_bits: Vec::new(),
            crossbar_dirty: false,
            cache_stats: ReadCacheStats::default(),
            mutation_epoch: 0,
            tuning,
            acc: vec![0; qn.n_neurons],
            fired: Vec::with_capacity(qn.n_neurons),
            cmp_words: vec![0; words],
            spike_words: vec![0; words],
            allow_words: vec![0; words],
            fired_words: vec![0; words],
            counts: vec![0; qn.n_neurons],
            batch: BatchLanes::new(),
            batch_acc: Vec::new(),
            map_lanes: MapLanes::new(),
        })
    }

    /// Logical input count.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Logical neuron count.
    pub fn n_neurons(&self) -> usize {
        self.n_neurons
    }

    /// Physical engine geometry (for the cost models).
    pub fn physical(&self) -> EngineConfig {
        self.physical
    }

    /// The accumulate tuning this engine runs with.
    pub fn tuning(&self) -> EngineTuning {
        self.tuning
    }

    /// Replaces the accumulate tuning. Outputs are bit-identical for
    /// every value (the tuning-invariance tests pin that); this is a
    /// timing knob and a test hook, not a behavioural setting.
    pub fn set_tuning(&mut self, tuning: EngineTuning) {
        self.tuning = tuning;
    }

    /// The weight crossbar (fault injection reads/writes registers here).
    pub fn crossbar(&self) -> &Crossbar {
        &self.crossbar
    }

    /// Mutable crossbar access for fault injection. Conservatively
    /// invalidates the transformed-crossbar image (any register may be
    /// about to change). The injection hot path should prefer
    /// [`flip_weight_bit`](Self::flip_weight_bit), which patches the
    /// cached image in place instead of discarding it.
    pub fn crossbar_mut(&mut self) -> &mut Crossbar {
        self.read_cache_key = ReadCacheKey::Invalid;
        self.crossbar_dirty = true;
        self.mutation_epoch += 1;
        &mut self.crossbar
    }

    /// Flips one weight-register bit (a soft error) and keeps the
    /// transformed-crossbar image coherent by patching the affected cache
    /// entry in place — read paths are pure per-register functions, so a
    /// single-register change never requires a full O(rows × cols)
    /// rebuild. This is the fault injector's write path.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IndexOutOfRange`] for bad indices (the engine is
    /// unchanged in that case).
    pub fn flip_weight_bit(&mut self, row: usize, col: usize, bit: u8) -> Result<(), HwError> {
        self.crossbar.flip_bit(row, col, bit)?;
        self.crossbar_dirty = true;
        self.mutation_epoch += 1;
        self.patch_cache_entry(row, col);
        Ok(())
    }

    /// Re-derives one transformed-crossbar cache entry from the register's
    /// current code (no-op when no transform image is active). Read paths
    /// are pure per-register functions, so a single-register change never
    /// requires a full O(rows × cols) rebuild.
    fn patch_cache_entry(&mut self, row: usize, col: usize) {
        if self.read_cache_key == ReadCacheKey::Invalid {
            return;
        }
        let code = self.crossbar.read(row, col);
        let transformed = match self.read_cache_key {
            ReadCacheKey::Bounded { threshold, default } => {
                if code > threshold {
                    default
                } else {
                    code
                }
            }
            ReadCacheKey::Table => self.read_cache_table[code as usize],
            ReadCacheKey::Invalid => unreachable!("guarded above"),
        };
        self.read_cache[row * self.n_neurons + col] = transformed;
        self.cache_stats.patches += 1;
    }

    /// Installs permanent stuck-at faults: each site's bit is forced to
    /// its stuck value now **and after every parameter reload** — healing
    /// restores the clean image, then the stuck bits re-manifest on top of
    /// it ([`reload_parameters`](Self::reload_parameters) re-applies
    /// them). This is what distinguishes a permanent fault from a
    /// transient [`flip_weight_bit`](Self::flip_weight_bit), which the
    /// next reload heals for good.
    ///
    /// Installing replaces any previously installed set (the campaign
    /// shape is one map per trial). Pass an empty slice — or call
    /// [`clear_stuck_bits`](Self::clear_stuck_bits) — to return to a
    /// purely transient fault model.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IndexOutOfRange`] if any site is outside the
    /// crossbar or names a bit ≥ 8; the engine is unchanged in that case.
    pub fn install_stuck_bits(&mut self, sites: &[StuckWeightBit]) -> Result<(), HwError> {
        for s in sites {
            if s.row >= self.crossbar.rows() {
                return Err(HwError::IndexOutOfRange {
                    what: "stuck-at row",
                    index: s.row,
                    bound: self.crossbar.rows(),
                });
            }
            if s.col >= self.crossbar.cols() {
                return Err(HwError::IndexOutOfRange {
                    what: "stuck-at column",
                    index: s.col,
                    bound: self.crossbar.cols(),
                });
            }
            if s.bit >= 8 {
                return Err(HwError::IndexOutOfRange {
                    what: "stuck-at bit",
                    index: s.bit as usize,
                    bound: 8,
                });
            }
        }
        self.stuck_bits = sites.to_vec();
        self.apply_stuck_bits();
        Ok(())
    }

    /// Removes all installed stuck-at faults. The registers keep their
    /// current (possibly stuck) codes until the next parameter reload,
    /// which — with the set now empty — restores a genuinely clean image.
    pub fn clear_stuck_bits(&mut self) {
        self.stuck_bits.clear();
    }

    /// The currently installed permanent stuck-at faults.
    pub fn stuck_bits(&self) -> &[StuckWeightBit] {
        &self.stuck_bits
    }

    /// Forces every installed stuck bit onto the registers, patching the
    /// transformed-crossbar image per changed site. Marks the crossbar
    /// dirty and bumps the mutation epoch when anything changed, so the
    /// clean-image capture logic never snapshots a stuck-corrupted image
    /// and derived backends (the event engine's compiled adjacency)
    /// recompile.
    fn apply_stuck_bits(&mut self) {
        let mut changed = false;
        for i in 0..self.stuck_bits.len() {
            let s = self.stuck_bits[i];
            let code = self.crossbar.read(s.row, s.col);
            let stuck = s.apply(code);
            if stuck != code {
                self.crossbar.write(s.row, s.col, stuck);
                self.patch_cache_entry(s.row, s.col);
                changed = true;
            }
        }
        if changed {
            self.crossbar_dirty = true;
            self.mutation_epoch += 1;
        }
    }

    /// The transformed-crossbar image cache counters (see
    /// [`ReadCacheStats`]) — a test hook for pinning campaign-level cache
    /// reuse, not a simulation observable.
    pub fn read_cache_stats(&self) -> ReadCacheStats {
        self.cache_stats
    }

    /// The neuron units (fault injection reads op-fault flags here).
    ///
    /// Fault flags in this view are always current. Membrane/refractory
    /// values reflect the last synchronization point (a
    /// [`neurons_mut`](Self::neurons_mut) call or a reference-path step);
    /// after optimized steps, read live membrane state through
    /// [`membranes`](Self::membranes) instead.
    pub fn neurons(&self) -> &[NeuronUnit] {
        &self.neurons
    }

    /// Mutable neuron access for fault injection.
    ///
    /// This is the AoS ↔ SoA synchronization boundary: the architectural
    /// view is refreshed from the hot-path lanes before being returned,
    /// and the lanes re-import it (including fault masks and the sparse
    /// faulty-neuron list) on the next optimized step — once per
    /// injection, not per step.
    pub fn neurons_mut(&mut self) -> &mut [NeuronUnit] {
        self.ensure_units();
        self.state_home = StateHome::Units;
        &mut self.neurons
    }

    /// Per-neuron thresholds in code units.
    pub fn thresholds(&self) -> &[i32] {
        &self.v_thresh
    }

    /// Shared integer neuron parameters.
    pub fn hw_params(&self) -> NeuronHwParams {
        self.hw
    }

    /// Makes the architectural units current (export lanes state).
    fn ensure_units(&mut self) {
        if self.state_home == StateHome::Lanes {
            self.lanes.sync_to_units(&mut self.neurons);
            self.state_home = StateHome::Units;
        }
    }

    /// Makes the SoA lanes current (import units state + fault masks).
    fn ensure_lanes(&mut self) {
        if self.state_home == StateHome::Units {
            self.lanes.sync_from_units(&self.neurons);
            self.state_home = StateHome::Lanes;
        }
    }

    /// Parameter replacement: rewrites every weight register from the
    /// clean deployment image and clears all neuron-operation faults (the
    /// paper's healing event for both fault classes). Also notifies
    /// `guard` so monitor latches reset.
    ///
    /// This is the heal-on-entry contract for **all** backends: every
    /// evaluate entry point (dense or event-driven — see
    /// [`crate::backend::EngineBackend`]) heals through this method first,
    /// which is what makes it sound for grid shards to reuse one
    /// deployment clone across trials. The reload bumps the mutation
    /// epoch, so backends that compile derived views of the crossbar (the
    /// event engine's adjacency lists) recompile from the healed image
    /// instead of serving a stale one.
    pub fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G) {
        self.crossbar
            .reload(&self.clean_codes)
            .expect("clean image always matches crossbar shape");
        self.crossbar_dirty = false;
        self.mutation_epoch += 1;
        // The registers are back to the clean deployment image; if the
        // clean transform image was ever captured, restoring it is a copy
        // — no transform sweep. Otherwise, if a transform is active (the
        // typical campaign shape is reload → inject → evaluate, so the
        // first build happens over *injected* codes and never qualifies
        // as clean), re-derive its image over the now-clean registers
        // once and capture it: every later trial at this read path then
        // costs a copy at reload plus O(sites) patches at injection,
        // with zero transform rebuilds.
        if self.clean_cache_key != ReadCacheKey::Invalid {
            self.read_cache.clear();
            self.read_cache.extend_from_slice(&self.clean_cache);
            self.read_cache_key = self.clean_cache_key;
            self.read_cache_table = self.clean_cache_table;
            self.cache_stats.restores += 1;
        } else if self.read_cache_key != ReadCacheKey::Invalid {
            self.rebuild_current_image();
        }
        // Permanent faults survive healing: re-manifest every installed
        // stuck bit onto the freshly restored image (marks the crossbar
        // dirty again and bumps the epoch when any register changed).
        self.apply_stuck_bits();
        for n in &mut self.neurons {
            n.clear_faults();
            n.reset_state();
        }
        self.state_home = StateHome::Units;
        guard.on_param_reload();
    }

    /// Clears membrane/refractory state (between samples). Persisted
    /// faults — flipped register bits and stuck neuron ops — remain, per
    /// the paper's persistence semantics.
    pub fn reset_state(&mut self) {
        // Cleared in both representations, so whichever is current stays
        // consistent without forcing a sync.
        for n in &mut self.neurons {
            n.reset_state();
        }
        self.lanes.reset_state();
    }

    /// Advances the engine one timestep.
    ///
    /// `active_rows` lists the input channels spiking this cycle. Returns
    /// the indices of neurons that emitted an *output* spike (after
    /// spike-generation faults and the guard's veto). Lateral inhibition
    /// is driven by output spikes, so a neuron whose spike generator is
    /// faulty (or vetoed) does not inhibit its neighbours.
    ///
    /// The returned slice borrows the engine's scratch buffer and is valid
    /// until the next `step`/`run_sample` call; copy it out
    /// (`.to_vec()`) if you need it longer.
    ///
    /// Resolves `path` on every call; per-step drivers should resolve once
    /// with [`ResolvedPath::new`] and use
    /// [`step_resolved`](Self::step_resolved).
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn step<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        let resolved = ResolvedPath::new(path);
        self.step_resolved(active_rows, &resolved, guard)
    }

    /// [`step`](Self::step) with a pre-resolved read path — the
    /// allocation-free, resolve-free form for per-step drivers.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn step_resolved<G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        path: &ResolvedPath,
        guard: &mut G,
    ) -> &[u32] {
        self.step_into(active_rows, path, guard);
        &self.fired
    }

    /// The engine-internal step: accumulate active rows through the
    /// resolved kernel, advance all neuron lanes, run the guard over the
    /// comparator bitmask, apply lateral inhibition through the fired
    /// bitmask. Leaves the fired indices in `self.fired`.
    fn step_into<G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        path: &ResolvedPath,
        guard: &mut G,
    ) {
        self.accumulate_active_rows(active_rows, path);
        self.neuron_phase(guard);
    }

    /// Drive phase of one timestep: zeroes the accumulators and
    /// accumulates `active_rows` through the resolved read path. Shared
    /// verbatim between the dense per-step path and the event backend's
    /// delay-free processed cycles, so both drive the very same kernel.
    pub(crate) fn accumulate_active_rows(&mut self, active_rows: &[u32], path: &ResolvedPath) {
        self.ensure_lanes();
        // Non-identity kernels accumulate from the transformed-crossbar
        // image at direct-add speed; the image is rebuilt only when the
        // transform or the register contents changed.
        if !matches!(path.kernel, ReadKernel::Direct) {
            self.ensure_read_cache(path);
        }
        let src: &[u8] = match path.kernel {
            ReadKernel::Direct => self.crossbar.codes_slice(),
            ReadKernel::Bounded { .. } | ReadKernel::Table => &self.read_cache,
        };
        // The per-step API accumulates row-at-a-time through the tuned
        // lane formulation (the historical shape, now shared with every
        // other datapath via `kernels`); row-*blocking* the drive phase
        // is the batched passes' lever — `run_batch_into` and
        // `run_batch_multi_map` amortize it across samples/maps, which
        // is exactly what the `batch_speedup`/`multi_map_speedup`
        // trajectory metrics measure against this path.
        self.acc.fill(0);
        kernels::accumulate_rows(
            self.tuning.kernel,
            src,
            self.n_neurons,
            active_rows,
            &mut self.acc,
        );
    }

    /// Drive phase of one timestep from an external pre-resolved weight
    /// image (row-major, same shape as the crossbar). The event backend's
    /// delayed path accumulates its zero-delay "immediate" image this way
    /// and then adds matured ring-buffer events via
    /// [`acc_add`](Self::acc_add).
    pub(crate) fn accumulate_image_rows(&mut self, src: &[u8], active_rows: &[u32]) {
        self.ensure_lanes();
        self.acc.fill(0);
        kernels::accumulate_rows(
            self.tuning.kernel,
            src,
            self.n_neurons,
            active_rows,
            &mut self.acc,
        );
    }

    /// Adds an externally accumulated drive plane (matured delayed
    /// events) into the current cycle's accumulators. Plain `i32`
    /// addition, so contribution order cannot change results.
    pub(crate) fn acc_add(&mut self, extra: &[i32]) {
        debug_assert_eq!(extra.len(), self.acc.len());
        for (a, &e) in self.acc.iter_mut().zip(extra) {
            *a += e;
        }
    }

    /// Neuron phase of one timestep over the already-filled accumulators:
    /// fused LIF step, guard observation, output-spike extraction, and
    /// lateral inhibition. Returns whether any comparator fired this
    /// cycle (`cmp`, pre-guard) — the event backend's hot-neuron gate.
    pub(crate) fn neuron_phase<G: SpikeGuard>(&mut self, guard: &mut G) -> bool {
        self.ensure_lanes();
        self.lanes.step_fused(
            &self.acc,
            &self.v_thresh,
            &self.hw,
            &mut self.cmp_words,
            &mut self.spike_words,
        );
        guard.observe_cycle(&self.cmp_words, &mut self.allow_words, self.n_neurons);
        let mut n_fired = 0_u32;
        let mut cmp_any = 0_u64;
        for ((&cmp, (fired, &spike)), &allow) in self
            .cmp_words
            .iter()
            .zip(self.fired_words.iter_mut().zip(self.spike_words.iter()))
            .zip(self.allow_words.iter())
        {
            cmp_any |= cmp;
            let f = spike & allow;
            *fired = f;
            n_fired += f.count_ones();
        }
        self.fired.clear();
        for (wi, &fw) in self.fired_words.iter().enumerate() {
            let mut w = fw;
            while w != 0 {
                self.fired.push((wi as u32) * 64 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        if n_fired > 0 && self.hw.v_inh > 0 {
            let total_inh = self.hw.v_inh.saturating_mul(n_fired as i32);
            self.lanes.inhibit_non_fired(&self.fired_words, total_inh);
        }
        cmp_any != 0
    }

    /// Output spikes of the last processed cycle (indices into the neuron
    /// range), as left by [`neuron_phase`](Self::neuron_phase).
    pub(crate) fn last_fired(&self) -> &[u32] {
        &self.fired
    }

    /// Whether any lane's membrane currently sits at or above its
    /// threshold — the event backend's skip-safety check after a cycle
    /// whose comparators fired.
    pub(crate) fn lanes_any_at_or_above(&mut self) -> bool {
        self.ensure_lanes();
        self.lanes.any_at_or_above(&self.v_thresh)
    }

    /// Applies `k` drive-free cycles to every lane in one catch-up pass
    /// (refractory countdown first, then `k − r` floored leak steps) —
    /// the event backend's lazy-leak flush. Bit-identical to `k`
    /// sequential silent fused steps; see
    /// [`NeuronLanes::advance_silent`].
    pub(crate) fn advance_lanes_silent(&mut self, k: u32, leak: &crate::event::LeakTable) {
        self.ensure_lanes();
        self.lanes.advance_silent(k, leak);
    }

    /// Monotone counter of crossbar-affecting mutations (see the field
    /// doc); derived backends key compiled views on it.
    pub(crate) fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// A zero-sized stand-in engine for `mem::replace` when a backend
    /// container swaps representations in place. Never stepped.
    pub(crate) fn placeholder() -> Self {
        Self {
            physical: EngineConfig::PAPER,
            n_inputs: 0,
            n_neurons: 0,
            crossbar: Crossbar::zeroed(0, 0),
            v_thresh: Vec::new(),
            hw: NeuronHwParams {
                v_reset: 0,
                v_leak: 0,
                t_refrac: 0,
                v_inh: 0,
            },
            neurons: Vec::new(),
            lanes: NeuronLanes::new(0),
            state_home: StateHome::Lanes,
            clean_codes: Vec::new(),
            read_cache: Vec::new(),
            read_cache_key: ReadCacheKey::Invalid,
            read_cache_table: [0; 256],
            clean_cache: Vec::new(),
            clean_cache_key: ReadCacheKey::Invalid,
            clean_cache_table: [0; 256],
            stuck_bits: Vec::new(),
            crossbar_dirty: false,
            cache_stats: ReadCacheStats::default(),
            mutation_epoch: 0,
            tuning: EngineTuning::fixed(),
            acc: Vec::new(),
            fired: Vec::new(),
            cmp_words: Vec::new(),
            spike_words: Vec::new(),
            allow_words: Vec::new(),
            fired_words: Vec::new(),
            counts: Vec::new(),
            batch: BatchLanes::new(),
            batch_acc: Vec::new(),
            map_lanes: MapLanes::new(),
        }
    }

    /// Presents one encoded sample (membrane state is cleared first) and
    /// returns per-neuron output spike counts as a borrow of the engine's
    /// scratch counter buffer — the allocation-free form of
    /// [`run_sample`](Self::run_sample). The slice is valid until the next
    /// `step`/`run_sample` call.
    pub fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        self.reset_state();
        self.counts.fill(0);
        let resolved = ResolvedPath::new(path);
        for step_idx in 0..train.n_steps() {
            self.step_into(train.step(step_idx), &resolved, guard);
            for i in 0..self.fired.len() {
                self.counts[self.fired[i] as usize] += 1;
            }
        }
        &self.counts
    }

    /// Presents one encoded sample (membrane state is cleared first) and
    /// returns per-neuron output spike counts as an owned vector.
    pub fn run_sample<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        self.run_sample_into(train, path, guard).to_vec()
    }

    /// Makes the transformed-crossbar image current for a non-identity
    /// kernel, rebuilding it only when the transform or the register
    /// contents changed. A rebuild over clean registers also captures the
    /// clean image, so later parameter reloads restore by copy.
    fn ensure_read_cache(&mut self, path: &ResolvedPath) {
        let current = match path.kernel {
            ReadKernel::Direct => return,
            ReadKernel::Bounded { threshold, default } => {
                self.read_cache_key == ReadCacheKey::Bounded { threshold, default }
            }
            ReadKernel::Table => {
                self.read_cache_key == ReadCacheKey::Table && self.read_cache_table == path.table
            }
        };
        if current {
            return;
        }
        match path.kernel {
            ReadKernel::Direct => unreachable!("early-returned above"),
            ReadKernel::Bounded { threshold, default } => {
                self.read_cache_key = ReadCacheKey::Bounded { threshold, default };
            }
            ReadKernel::Table => {
                self.read_cache_key = ReadCacheKey::Table;
                self.read_cache_table = path.table;
            }
        }
        self.rebuild_current_image();
    }

    /// Rebuilds the transformed image for the *current* cache key over the
    /// current register contents (key and table are left unchanged), and
    /// captures the result as the clean image when the crossbar is clean.
    fn rebuild_current_image(&mut self) {
        self.read_cache.resize(self.crossbar.len(), 0);
        match self.read_cache_key {
            ReadCacheKey::Invalid => return,
            ReadCacheKey::Bounded { threshold, default } => {
                for (dst, &c) in self.read_cache.iter_mut().zip(self.crossbar.codes_slice()) {
                    *dst = if c > threshold { default } else { c };
                }
            }
            ReadCacheKey::Table => {
                let table = self.read_cache_table;
                for (dst, &c) in self.read_cache.iter_mut().zip(self.crossbar.codes_slice()) {
                    *dst = table[c as usize];
                }
            }
        }
        self.cache_stats.rebuilds += 1;
        if !self.crossbar_dirty {
            self.clean_cache.clear();
            self.clean_cache.extend_from_slice(&self.read_cache);
            self.clean_cache_key = self.read_cache_key;
            self.clean_cache_table = self.read_cache_table;
        }
    }

    /// Presents a batch of encoded samples in one interleaved pass and
    /// writes per-sample spike counts into `out` — the campaign hot path
    /// (see the module docs).
    ///
    /// Every sample is evaluated **independently**: membrane state starts
    /// from rest and the spike guard is cloned per sample from the `guard`
    /// prototype, so the result for sample `s` is bit-identical to
    ///
    /// ```text
    /// engine.run_sample(&trains[s], path, &mut guard.clone())
    /// ```
    ///
    /// on an otherwise-idle engine (property-tested against
    /// [`run_sample_reference`](Self::run_sample_reference) across kernels,
    /// guards, and fault maps). Trains may have ragged lengths; samples
    /// past their last timestep simply sit out the remaining cycles.
    /// Internally the batch is processed in chunks of the engine's tuned
    /// width (at most [`MAX_BATCH`] samples). Persisted faults apply to
    /// every sample, per the paper's semantics; the engine's own membrane
    /// state is left reset.
    ///
    /// # Panics
    ///
    /// Panics if any train's active-row index is out of range for this
    /// engine.
    pub fn run_batch_into<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
        out: &mut BatchResult,
    ) {
        let resolved = ResolvedPath::new(path);
        out.reset(self.n_neurons, trains.len());
        // Fault flags are authoritative in the architectural units; make
        // them current once for the whole batch.
        self.ensure_units();
        self.ensure_read_cache(&resolved);
        let batch_chunk = self.tuning.clamped_batch_chunk();
        for (chunk_idx, chunk) in trains.chunks(batch_chunk).enumerate() {
            self.run_batch_chunk(chunk, chunk_idx * batch_chunk, &resolved, guard, out);
        }
        // The batch pass bypasses the single-sample state; leave the
        // engine at rest in both representations so a later step/sample
        // starts from a well-defined point.
        self.reset_state();
    }

    /// [`run_batch_into`](Self::run_batch_into) returning an owned
    /// [`BatchResult`].
    pub fn run_batch<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
    ) -> BatchResult {
        let mut out = BatchResult::new();
        self.run_batch_into(trains, path, guard, &mut out);
        out
    }

    /// One ≤ [`MAX_BATCH`] chunk of the batched pass: per timestep, fill
    /// every active sample's drive plane (sharing the accumulate between
    /// samples whose active-row sets are identical this cycle), then step
    /// each sample's lanes, guard, counters, and inhibition.
    fn run_batch_chunk<G: SpikeGuard + Clone>(
        &mut self,
        chunk: &[SpikeTrain],
        base: usize,
        path: &ResolvedPath,
        guard: &G,
        out: &mut BatchResult,
    ) {
        let b = chunk.len();
        let n = self.n_neurons;
        let words = n_words(n);
        self.batch.configure(&self.neurons, b);
        let mut guards: Vec<G> = (0..b).map(|_| guard.clone()).collect();
        // The drive planes are taken out of `self` for the duration of the
        // chunk so the accumulate can borrow the crossbar/image while
        // holding `&mut` plane slices.
        let mut acc_plane = std::mem::take(&mut self.batch_acc);
        acc_plane.clear();
        acc_plane.resize(b * n, 0);
        let src: &[u8] = match path.kernel {
            ReadKernel::Direct => self.crossbar.codes_slice(),
            // `ensure_read_cache` ran in `run_batch_into`, and nothing in
            // the chunk loop mutates registers or transform.
            ReadKernel::Bounded { .. } | ReadKernel::Table => &self.read_cache,
        };
        let t_max = chunk.iter().map(SpikeTrain::n_steps).max().unwrap_or(0);
        for t in 0..t_max {
            // Drive phase: one accumulate per *distinct* active-row set
            // across the batch this cycle; duplicates are copied. The
            // transformed image rows touched at cycle `t` stay hot across
            // every sample of the chunk.
            for s in 0..b {
                if t >= chunk[s].n_steps() {
                    continue;
                }
                let rows = chunk[s].step(t);
                let shared = (0..s).find(|&p| t < chunk[p].n_steps() && chunk[p].step(t) == rows);
                let (done, rest) = acc_plane.split_at_mut(s * n);
                let acc_s = &mut rest[..n];
                if let Some(p) = shared {
                    acc_s.copy_from_slice(&done[p * n..p * n + n]);
                } else {
                    kernels::write_rows_blocked(
                        self.tuning.kernel,
                        self.tuning.row_block,
                        src,
                        n,
                        rows,
                        acc_s,
                    );
                }
            }
            // Neuron phase: fused step + guard + count + inhibition per
            // active sample, reusing the engine's word scratch buffers.
            for s in 0..b {
                if t >= chunk[s].n_steps() {
                    continue;
                }
                let acc_s = &acc_plane[s * n..(s + 1) * n];
                self.batch.step_fused_sample(
                    s,
                    acc_s,
                    &self.v_thresh,
                    &self.hw,
                    &mut self.cmp_words,
                    &mut self.spike_words,
                );
                guards[s].observe_cycle(&self.cmp_words, &mut self.allow_words, n);
                let mut n_fired = 0_u32;
                for w in 0..words {
                    let f = self.spike_words[w] & self.allow_words[w];
                    self.fired_words[w] = f;
                    n_fired += f.count_ones();
                }
                let counts_s = out.counts_mut(base + s);
                for (wi, &fw) in self.fired_words.iter().enumerate() {
                    let mut bits = fw;
                    while bits != 0 {
                        counts_s[wi * 64 + bits.trailing_zeros() as usize] += 1;
                        bits &= bits - 1;
                    }
                }
                if n_fired > 0 && self.hw.v_inh > 0 {
                    let total_inh = self.hw.v_inh.saturating_mul(n_fired as i32);
                    self.batch
                        .inhibit_non_fired_sample(s, &self.fired_words, total_inh);
                }
            }
        }
        self.batch_acc = acc_plane;
    }

    /// Evaluates K neuron-only fault maps of one trial group through a
    /// **single shared drive phase** — the engine-level lever for
    /// batching a campaign across techniques/trials.
    ///
    /// When a trial group's maps strike only neuron operations, the
    /// crossbar (and therefore the transformed-crossbar image) is
    /// identical for every map: at each timestep of each sample the
    /// synaptic drive is accumulated **once** and then every map's neuron
    /// lanes are stepped against it — K maps cost one accumulate plus K
    /// cheap neuron passes, instead of K full engine passes.
    ///
    /// Each `(map, sample)` pair is evaluated **independently**: map `m`'s
    /// fault plane is the engine's persisted neuron faults plus
    /// `maps[m]`'s sites, membrane state starts from rest per sample, and
    /// the spike guard is cloned per (map, sample) from the `guard`
    /// prototype — so `out.counts(m, s)` is bit-identical to
    ///
    /// ```text
    /// let mut e = engine.clone();
    /// for &(j, op) in &maps[m] { e.neurons_mut()[j as usize].faults.set(op); }
    /// e.run_sample(&trains[s], path, &mut guard.clone())
    /// ```
    ///
    /// (property-tested against
    /// [`run_batch_multi_map_reference`](Self::run_batch_multi_map_reference)
    /// across kernels, guards, vr-burst maps, and ragged map counts).
    /// Maps are processed in chunks of the engine's tuned width (at most
    /// [`MAX_MAPS`]); the engine's own
    /// fault state and crossbar are left untouched, and its membrane
    /// state is left reset.
    ///
    /// # Panics
    ///
    /// Panics if a map site's neuron index or a train's active-row index
    /// is out of range for this engine.
    pub fn run_batch_multi_map<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
        out: &mut MultiMapResult,
    ) {
        let resolved = ResolvedPath::new(path);
        out.reset(self.n_neurons, trains.len(), maps.len());
        // Fault flags are authoritative in the architectural units; make
        // them current once so every map chunk overlays the same base.
        self.ensure_units();
        self.ensure_read_cache(&resolved);
        let map_chunk = self.tuning.clamped_map_chunk();
        for (chunk_idx, chunk) in maps.chunks(map_chunk).enumerate() {
            self.run_multi_map_chunk(trains, chunk, chunk_idx * map_chunk, &resolved, guard, out);
        }
        // The multi-map pass bypasses the single-sample state; leave the
        // engine at rest in both representations.
        self.reset_state();
    }

    /// One ≤ [`MAX_MAPS`] chunk of the multi-map pass: per sample, per
    /// timestep, one accumulate feeds every map's fused step, guard
    /// observation, spike counting, and inhibition.
    fn run_multi_map_chunk<G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        chunk: &[NeuronFaultOverlay],
        base: usize,
        path: &ResolvedPath,
        guard: &G,
        out: &mut MultiMapResult,
    ) {
        let k = chunk.len();
        let n = self.n_neurons;
        let words = n_words(n);
        self.map_lanes.configure(&self.neurons, chunk);
        let src: &[u8] = match path.kernel {
            ReadKernel::Direct => self.crossbar.codes_slice(),
            // `ensure_read_cache` ran in `run_batch_multi_map`, and
            // neuron-only maps never mutate registers or transform.
            ReadKernel::Bounded { .. } | ReadKernel::Table => &self.read_cache,
        };
        for (s, train) in trains.iter().enumerate() {
            self.map_lanes.reset_state();
            let mut guards: Vec<G> = (0..k).map(|_| guard.clone()).collect();
            for t in 0..train.n_steps() {
                // Drive phase: one accumulate for the whole map chunk —
                // the crossbar rows of cycle t are read once, not K times.
                kernels::write_rows_blocked(
                    self.tuning.kernel,
                    self.tuning.row_block,
                    src,
                    n,
                    train.step(t),
                    &mut self.acc,
                );
                // Neuron phase: fused step + guard + count + inhibition
                // per map, reusing the engine's word scratch buffers.
                for (m, guard_m) in guards.iter_mut().enumerate() {
                    self.map_lanes.step_fused_map(
                        m,
                        &self.acc,
                        &self.v_thresh,
                        &self.hw,
                        &mut self.cmp_words,
                        &mut self.spike_words,
                    );
                    guard_m.observe_cycle(&self.cmp_words, &mut self.allow_words, n);
                    let mut n_fired = 0_u32;
                    for w in 0..words {
                        let f = self.spike_words[w] & self.allow_words[w];
                        self.fired_words[w] = f;
                        n_fired += f.count_ones();
                    }
                    let counts_m = out.counts_mut(base + m, s);
                    for (wi, &fw) in self.fired_words.iter().enumerate() {
                        let mut bits = fw;
                        while bits != 0 {
                            counts_m[wi * 64 + bits.trailing_zeros() as usize] += 1;
                            bits &= bits - 1;
                        }
                    }
                    if n_fired > 0 && self.hw.v_inh > 0 {
                        let total_inh = self.hw.v_inh.saturating_mul(n_fired as i32);
                        self.map_lanes
                            .inhibit_non_fired_map(m, &self.fired_words, total_inh);
                    }
                }
            }
        }
    }

    /// Reference formulation of
    /// [`run_batch_multi_map`](Self::run_batch_multi_map): the per-map
    /// scalar loop — inject each map's sites into the architectural
    /// units, run every sample through
    /// [`run_sample_reference`](Self::run_sample_reference) with a fresh
    /// guard clone, restore the fault flags. Kept as the behavioral
    /// oracle for the equivalence property tests; not a hot path.
    pub fn run_batch_multi_map_reference<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
    ) -> MultiMapResult {
        let mut out = MultiMapResult::new();
        out.reset(self.n_neurons, trains.len(), maps.len());
        self.ensure_units();
        let baseline: Vec<OpFaults> = self.neurons.iter().map(|u| u.faults).collect();
        for (m, map) in maps.iter().enumerate() {
            {
                let units = self.neurons_mut();
                for &(j, op) in map {
                    units[j as usize].faults.set(op);
                }
            }
            for (s, train) in trains.iter().enumerate() {
                let counts = self.run_sample_reference(train, path, &mut guard.clone());
                out.counts_mut(m, s).copy_from_slice(&counts);
            }
            let units = self.neurons_mut();
            for (u, &f) in units.iter_mut().zip(&baseline) {
                u.faults = f;
            }
        }
        self.reset_state();
        out
    }

    /// Reference (pre-optimization) formulation of [`step`](Self::step):
    /// per-element closure reads, per-neuron branch-chain stepping, and
    /// one guard call per neuron. Kept as the behavioral oracle for the
    /// equivalence property tests; not a hot path.
    pub fn step_reference<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        self.ensure_units();
        let mut acc = vec![0_i64; self.n_neurons];
        for &row in active_rows {
            self.crossbar
                .accumulate_row(row as usize, |c| path.read(c), &mut acc);
        }
        let mut fired: Vec<u32> = Vec::new();
        for (j, &drive) in acc.iter().enumerate() {
            let out = self.neurons[j].step(drive, self.v_thresh[j], &self.hw);
            let allowed = guard.allow_spike(j, out.cmp_out);
            if out.spike && allowed {
                fired.push(j as u32);
            }
        }
        if !fired.is_empty() && self.hw.v_inh > 0 {
            let total_inh = self.hw.v_inh.saturating_mul(fired.len() as i32);
            let mut is_fired = vec![false; self.n_neurons];
            for &j in &fired {
                is_fired[j as usize] = true;
            }
            for (j, n) in self.neurons.iter_mut().enumerate() {
                if !is_fired[j] {
                    n.inhibit(total_inh);
                }
            }
        }
        fired
    }

    /// Reference formulation of [`run_sample`](Self::run_sample), built on
    /// [`step_reference`](Self::step_reference).
    pub fn run_sample_reference<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        self.reset_state();
        let mut counts = vec![0_u32; self.n_neurons];
        for step in 0..train.n_steps() {
            for j in self.step_reference(train.step(step), path, guard) {
                counts[j as usize] += 1;
            }
        }
        counts
    }

    /// Per-neuron membrane potentials (for trajectory equivalence tests),
    /// read from whichever representation is current.
    pub fn membranes(&self) -> Vec<i32> {
        match self.state_home {
            StateHome::Lanes => self.lanes.vmem().to_vec(),
            StateHome::Units => self.neurons.iter().map(|n| n.vmem).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron_unit::NeuronOp;
    use snn_sim::config::SnnConfig;
    use snn_sim::encoding::PoissonEncoder;
    use snn_sim::network::Network;
    use snn_sim::quant::QuantizedNetwork;
    use snn_sim::rng::seeded_rng;

    fn small_engine() -> ComputeEngine {
        let cfg = SnnConfig::builder()
            .n_inputs(8)
            .n_neurons(4)
            .v_thresh(2.0)
            .v_leak(0.1)
            .v_inh(4.0)
            .t_refrac(2)
            .build()
            .unwrap();
        let net = Network::from_parts(cfg.clone(), vec![0.5; cfg.n_synapses()]).unwrap();
        let qn = QuantizedNetwork::from_network_default(&net);
        ComputeEngine::for_network(&qn).unwrap()
    }

    #[test]
    fn saturating_input_elicits_spikes() {
        let mut e = small_engine();
        let mut total = 0;
        for _ in 0..20 {
            total += e
                .step(&[0, 1, 2, 3, 4, 5, 6, 7], &DirectRead, &mut NoGuard)
                .len();
        }
        assert!(total > 0);
    }

    #[test]
    fn silent_input_no_spikes() {
        let mut e = small_engine();
        for _ in 0..20 {
            assert!(e.step(&[], &DirectRead, &mut NoGuard).is_empty());
        }
    }

    #[test]
    fn run_sample_resets_state_between_samples() {
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 2);
        train.push_step(vec![0, 1, 2, 3]);
        train.push_step(vec![0, 1, 2, 3]);
        let a = e.run_sample(&train, &DirectRead, &mut NoGuard);
        let b = e.run_sample(&train, &DirectRead, &mut NoGuard);
        assert_eq!(a, b, "same input after reset must give same counts");
    }

    #[test]
    fn vr_fault_causes_burst_and_dominates() {
        let mut e = small_engine();
        e.neurons_mut()[1].faults.set(NeuronOp::VmemReset);
        let mut train = SpikeTrain::new(8, 30);
        for _ in 0..30 {
            train.push_step(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
        let counts = e.run_sample(&train, &DirectRead, &mut NoGuard);
        let others_max = counts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != 1)
            .map(|(_, &c)| c)
            .max()
            .unwrap();
        assert!(
            counts[1] > 2 * others_max,
            "bursting neuron must dominate: {counts:?}"
        );
    }

    #[test]
    fn sg_fault_silences_neuron() {
        let mut e = small_engine();
        e.neurons_mut()[2].faults.set(NeuronOp::SpikeGeneration);
        let mut train = SpikeTrain::new(8, 30);
        for _ in 0..30 {
            train.push_step(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
        let counts = e.run_sample(&train, &DirectRead, &mut NoGuard);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn reload_parameters_heals_faults() {
        let mut e = small_engine();
        e.crossbar_mut().flip_bit(0, 0, 7).unwrap();
        e.neurons_mut()[0].faults.set(NeuronOp::VmemReset);
        let dirty = e.crossbar().read(0, 0);
        e.reload_parameters(&mut NoGuard);
        assert_ne!(e.crossbar().read(0, 0), dirty);
        assert!(!e.neurons()[0].faults.any());
    }

    #[test]
    fn guard_vetoes_spikes() {
        struct MuteAll;
        impl SpikeGuard for MuteAll {
            fn allow_spike(&mut self, _n: usize, _c: bool) -> bool {
                false
            }
        }
        let mut e = small_engine();
        let mut total = 0;
        for _ in 0..20 {
            total += e
                .step(&[0, 1, 2, 3, 4, 5, 6, 7], &DirectRead, &mut MuteAll)
                .len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn read_path_bounding_reduces_drive() {
        // A path clamping codes above 64 to 0 must slow firing down.
        struct Clamp;
        impl WeightReadPath for Clamp {
            fn read(&self, code: u8) -> u8 {
                if code >= 64 {
                    0
                } else {
                    code
                }
            }
        }
        let mut plain = small_engine();
        let mut clamped = small_engine();
        let mut train = SpikeTrain::new(8, 30);
        for _ in 0..30 {
            train.push_step(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
        let a: u32 = plain
            .run_sample(&train, &DirectRead, &mut NoGuard)
            .iter()
            .sum();
        let b: u32 = clamped
            .run_sample(&train, &Clamp, &mut NoGuard)
            .iter()
            .sum();
        assert!(b < a, "clamped engine must fire less ({b} vs {a})");
    }

    #[test]
    fn optimized_step_matches_reference() {
        // Same engine state, same inputs: the SoA fused step and the
        // per-neuron reference must agree spike for spike.
        struct Clamp;
        impl WeightReadPath for Clamp {
            fn read(&self, code: u8) -> u8 {
                if code >= 100 {
                    13
                } else {
                    code
                }
            }
        }
        let mut fast = small_engine();
        let mut slow = small_engine();
        fast.crossbar_mut().flip_bit(3, 1, 7).unwrap();
        slow.crossbar_mut().flip_bit(3, 1, 7).unwrap();
        for t in 0..40 {
            let rows: Vec<u32> = (0..8).filter(|r| (t + r) % 3 != 0).collect();
            let a = fast.step(&rows, &Clamp, &mut NoGuard).to_vec();
            let b = slow.step_reference(&rows, &Clamp, &mut NoGuard);
            assert_eq!(a, b, "step {t}");
            assert_eq!(fast.membranes(), slow.membranes(), "step {t}");
        }
    }

    #[test]
    fn step_resolved_matches_step() {
        struct Clamp;
        impl WeightReadPath for Clamp {
            fn read(&self, code: u8) -> u8 {
                code.saturating_sub(40)
            }
        }
        let mut by_path = small_engine();
        let mut by_handle = small_engine();
        let resolved = ResolvedPath::new(&Clamp);
        for t in 0..30 {
            let rows: Vec<u32> = (0..8).filter(|r| (t + r) % 2 == 0).collect();
            let a = by_path.step(&rows, &Clamp, &mut NoGuard).to_vec();
            let b = by_handle
                .step_resolved(&rows, &resolved, &mut NoGuard)
                .to_vec();
            assert_eq!(a, b, "step {t}");
            assert_eq!(by_path.membranes(), by_handle.membranes(), "step {t}");
        }
    }

    #[test]
    fn default_observe_cycle_forwards_to_allow_spike() {
        // A guard implementing only allow_spike must behave identically
        // under the batched protocol — including partial trailing words.
        struct MuteEven;
        impl SpikeGuard for MuteEven {
            fn allow_spike(&mut self, n: usize, _c: bool) -> bool {
                n % 2 == 1
            }
        }
        let n = 70;
        let words = n_words(n);
        let cmp = vec![u64::MAX; words];
        let mut allow = vec![0_u64; words];
        MuteEven.observe_cycle(&cmp, &mut allow, n);
        for j in 0..n {
            let got = (allow[j >> 6] >> (j & 63)) & 1 != 0;
            assert_eq!(got, j % 2 == 1, "neuron {j}");
        }
        // Padding bits beyond n are zero under the default forwarder.
        for b in (n % 64)..64 {
            assert_eq!((allow[words - 1] >> b) & 1, 0, "padding bit {b}");
        }
    }

    #[test]
    fn run_sample_into_matches_owned_and_reference() {
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 20);
        for t in 0..20_u32 {
            train.push_step((0..8).filter(|r| (t + r) % 2 == 0).collect());
        }
        let owned = e.run_sample(&train, &DirectRead, &mut NoGuard);
        let reference = e.run_sample_reference(&train, &DirectRead, &mut NoGuard);
        let into = e
            .run_sample_into(&train, &DirectRead, &mut NoGuard)
            .to_vec();
        assert_eq!(owned, reference);
        assert_eq!(owned, into);
    }

    #[test]
    fn mixed_reference_and_optimized_steps_share_state() {
        // Interleaving the two formulations on one engine must stay
        // coherent: state is handed between representations at each
        // switch, never lost.
        let mut mixed = small_engine();
        let mut oracle = small_engine();
        for t in 0..30 {
            let rows: Vec<u32> = (0..8).filter(|r| (t + r) % 3 != 0).collect();
            let a = if t % 2 == 0 {
                mixed.step(&rows, &DirectRead, &mut NoGuard).to_vec()
            } else {
                mixed.step_reference(&rows, &DirectRead, &mut NoGuard)
            };
            let b = oracle.step_reference(&rows, &DirectRead, &mut NoGuard);
            assert_eq!(a, b, "step {t}");
            assert_eq!(mixed.membranes(), oracle.membranes(), "step {t}");
        }
    }

    #[test]
    fn direct_read_table_is_identity() {
        let t = DirectRead.table();
        for (i, &v) in t.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
        assert!(DirectRead.is_identity());
    }

    /// The bounded read path used by the cache tests below.
    struct Bound90;
    impl WeightReadPath for Bound90 {
        fn read(&self, code: u8) -> u8 {
            if code > 90 {
                11
            } else {
                code
            }
        }
        fn bound_params(&self) -> Option<(u8, u8)> {
            Some((90, 11))
        }
    }

    #[test]
    fn read_cache_rebuilds_only_when_stale() {
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 5);
        for _ in 0..5 {
            train.push_step(vec![0, 2, 4, 6]);
        }
        assert_eq!(e.read_cache_stats(), ReadCacheStats::default());
        // First non-identity sample builds the image once.
        e.run_sample(&train, &Bound90, &mut NoGuard);
        assert_eq!(e.read_cache_stats().rebuilds, 1);
        // Steady state: more samples, same image.
        e.run_sample(&train, &Bound90, &mut NoGuard);
        e.run_batch(&[train.clone(), train.clone()], &Bound90, &NoGuard);
        assert_eq!(e.read_cache_stats().rebuilds, 1);
        // Conservative mutation boundary: crossbar_mut invalidates, the
        // next sample rebuilds.
        e.crossbar_mut().flip_bit(0, 0, 3).unwrap();
        e.run_sample(&train, &Bound90, &mut NoGuard);
        assert_eq!(e.read_cache_stats().rebuilds, 2);
        // A different transform over the same registers is a new image.
        e.run_sample(&train, &DirectRead, &mut NoGuard);
        assert_eq!(e.read_cache_stats().rebuilds, 2, "direct path has no image");
        struct Bound40;
        impl WeightReadPath for Bound40 {
            fn read(&self, code: u8) -> u8 {
                if code > 40 {
                    0
                } else {
                    code
                }
            }
            fn bound_params(&self) -> Option<(u8, u8)> {
                Some((40, 0))
            }
        }
        e.run_sample(&train, &Bound40, &mut NoGuard);
        assert_eq!(e.read_cache_stats().rebuilds, 3);
    }

    #[test]
    fn reload_restores_clean_image_without_rebuild() {
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 5);
        for _ in 0..5 {
            train.push_step(vec![1, 3, 5, 7]);
        }
        // Build (and capture) the clean image, then dirty the registers.
        let clean_counts = e.run_sample(&train, &Bound90, &mut NoGuard);
        e.flip_weight_bit(2, 1, 7).unwrap();
        assert_eq!(e.read_cache_stats().patches, 1);
        assert_eq!(e.read_cache_stats().rebuilds, 1);
        // Reload restores the captured clean image by copy — no rebuild —
        // and the results match the pre-fault run exactly.
        e.reload_parameters(&mut NoGuard);
        let stats = e.read_cache_stats();
        assert_eq!(stats.restores, 1);
        let after = e.run_sample(&train, &Bound90, &mut NoGuard);
        assert_eq!(
            e.read_cache_stats().rebuilds,
            1,
            "restore made rebuild unnecessary"
        );
        assert_eq!(after, clean_counts);
    }

    #[test]
    fn flip_weight_bit_patch_matches_full_rebuild() {
        // Patching the image in place must be indistinguishable from the
        // conservative invalidate-and-rebuild route.
        let mut patched = small_engine();
        let mut rebuilt = small_engine();
        let mut train = SpikeTrain::new(8, 10);
        for t in 0..10_u32 {
            train.push_step((0..8).filter(|r| (t + r) % 3 != 0).collect());
        }
        // Build both caches first.
        patched.run_sample(&train, &Bound90, &mut NoGuard);
        rebuilt.run_sample(&train, &Bound90, &mut NoGuard);
        for (row, col, bit) in [(0_usize, 1_usize, 7_u8), (3, 2, 6), (5, 0, 0), (7, 3, 5)] {
            patched.flip_weight_bit(row, col, bit).unwrap();
            rebuilt.crossbar_mut().flip_bit(row, col, bit).unwrap();
        }
        let a = patched.run_sample(&train, &Bound90, &mut NoGuard);
        let b = rebuilt.run_sample(&train, &Bound90, &mut NoGuard);
        assert_eq!(a, b);
        assert_eq!(
            patched.read_cache_stats().rebuilds,
            1,
            "patches avoided the rebuild"
        );
        assert_eq!(rebuilt.read_cache_stats().rebuilds, 2);
        assert_eq!(patched.crossbar().codes(), rebuilt.crossbar().codes());
    }

    #[test]
    fn campaign_trial_cycle_stops_rebuilding_after_first_reload() {
        // The canonical campaign trial shape is reload → inject → evaluate.
        // Trial 1 builds the image over injected (dirty) codes; the next
        // reload re-derives the clean image once and captures it; from
        // then on every trial costs one restore plus per-site patches —
        // zero further transform rebuilds — while staying bit-identical
        // to a conservatively invalidating engine.
        let mut reusing = small_engine();
        let mut oracle = small_engine();
        let mut train = SpikeTrain::new(8, 8);
        for t in 0..8_u32 {
            train.push_step((0..8).filter(|r| (t + r) % 2 == 0).collect());
        }
        for trial in 0..5_u8 {
            reusing.reload_parameters(&mut NoGuard);
            oracle.reload_parameters(&mut NoGuard);
            reusing.flip_weight_bit(trial as usize, 1, 7).unwrap();
            oracle
                .crossbar_mut()
                .flip_bit(trial as usize, 1, 7)
                .unwrap();
            let a = reusing.run_sample(&train, &Bound90, &mut NoGuard);
            let b = oracle.run_sample(&train, &Bound90, &mut NoGuard);
            assert_eq!(a, b, "trial {trial}");
        }
        let stats = reusing.read_cache_stats();
        // Rebuild 1: trial 1's first evaluation (dirty codes). Rebuild 2:
        // trial 2's reload deriving + capturing the clean image.
        assert_eq!(stats.rebuilds, 2);
        assert_eq!(stats.restores, 3, "trials 3..5 restored by copy");
        assert_eq!(stats.patches, 4, "trials 2..5 patched one site each");
        // The oracle pays the same clean-image derivation at its second
        // reload, and then a full rebuild per trial on top (its
        // `crossbar_mut` route conservatively invalidates).
        assert_eq!(oracle.read_cache_stats().rebuilds, 6);
    }

    #[test]
    fn flip_weight_bit_without_cache_is_plain_flip() {
        let mut e = small_engine();
        let before = e.crossbar().read(1, 1);
        e.flip_weight_bit(1, 1, 4).unwrap();
        assert_eq!(e.crossbar().read(1, 1), before ^ (1 << 4));
        assert_eq!(e.read_cache_stats().patches, 0, "no image to patch yet");
        assert!(e.flip_weight_bit(99, 0, 0).is_err());
    }

    #[test]
    fn run_batch_matches_run_sample_on_small_engine() {
        let mut e = small_engine();
        let mut trains = Vec::new();
        for s in 0..5_u32 {
            let mut train = SpikeTrain::new(8, 15);
            for t in 0..15 {
                train.push_step((0..8).filter(|r| (t + r + s) % 3 != 0).collect());
            }
            trains.push(train);
        }
        let batched = e.run_batch(&trains, &DirectRead, &NoGuard);
        for (s, train) in trains.iter().enumerate() {
            let single = e.run_sample(train, &DirectRead, &mut NoGuard);
            assert_eq!(batched.counts(s), single.as_slice(), "sample {s}");
        }
        assert_eq!(batched.iter().count(), trains.len());
    }

    #[test]
    fn run_batch_multi_map_matches_reference_on_small_engine() {
        let mut fast = small_engine();
        // Persisted base fault: every map must see it in union with its
        // own overlay.
        fast.neurons_mut()[0].faults.set(NeuronOp::VmemLeak);
        let mut slow = fast.clone();
        let mut trains = Vec::new();
        for s in 0..3_u32 {
            let mut train = SpikeTrain::new(8, 12);
            for t in 0..12 {
                train.push_step((0..8).filter(|r| (t + r + s) % 3 != 0).collect());
            }
            trains.push(train);
        }
        let maps: Vec<NeuronFaultOverlay> = vec![
            vec![],
            vec![(1, NeuronOp::VmemReset)],
            vec![(2, NeuronOp::SpikeGeneration), (3, NeuronOp::VmemIncrease)],
        ];
        let mut out = MultiMapResult::new();
        fast.run_batch_multi_map(&trains, &maps, &DirectRead, &NoGuard, &mut out);
        let reference = slow.run_batch_multi_map_reference(&trains, &maps, &DirectRead, &NoGuard);
        assert_eq!(out, reference);
        assert_eq!(out.n_maps(), 3);
        assert_eq!(out.n_samples(), 3);
        // The vr map's burst neuron dominates only in its own plane.
        assert!(out.counts(1, 0)[1] > out.counts(0, 0)[1]);
        // The engine's own fault state is untouched by the pass.
        assert!(fast.neurons()[0].faults.vl);
        assert!(!fast.neurons()[1].faults.vr);
    }

    #[test]
    fn run_batch_multi_map_chunks_ragged_map_counts() {
        // MAX_MAPS + 1 maps forces a ragged second chunk.
        let mut fast = small_engine();
        let mut slow = fast.clone();
        let mut train = SpikeTrain::new(8, 10);
        for t in 0..10_u32 {
            train.push_step((0..8).filter(|r| (t + r) % 2 == 0).collect());
        }
        let maps: Vec<NeuronFaultOverlay> = (0..MAX_MAPS + 1)
            .map(|m| vec![((m % 4) as u32, NeuronOp::ALL[m % 4])])
            .collect();
        let mut out = MultiMapResult::new();
        fast.run_batch_multi_map(&[train.clone()], &maps, &DirectRead, &NoGuard, &mut out);
        let reference = slow.run_batch_multi_map_reference(&[train], &maps, &DirectRead, &NoGuard);
        assert_eq!(out, reference);
        assert_eq!(out.n_maps(), MAX_MAPS + 1);
    }

    #[test]
    fn run_batch_multi_map_degenerate_inputs() {
        let mut e = small_engine();
        let mut out = MultiMapResult::new();
        // No maps: an empty result, engine untouched.
        e.run_batch_multi_map(
            &[SpikeTrain::new(8, 0)],
            &[],
            &DirectRead,
            &NoGuard,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(out.n_samples(), 1);
        // No samples: K empty planes.
        e.run_batch_multi_map(&[], &[vec![]], &DirectRead, &NoGuard, &mut out);
        assert_eq!(out.n_maps(), 1);
        assert_eq!(out.n_samples(), 0);
        // Zero-length trains: all-zero counts.
        e.run_batch_multi_map(
            &[SpikeTrain::new(8, 0)],
            &[vec![], vec![(0, NeuronOp::VmemReset)]],
            &DirectRead,
            &NoGuard,
            &mut out,
        );
        assert!(out.counts(0, 0).iter().all(|&c| c == 0));
        assert!(out.counts(1, 0).iter().all(|&c| c == 0));
    }

    #[test]
    fn multi_map_leaves_read_cache_and_crossbar_alone() {
        // Neuron-only trial groups must not rebuild the transformed image:
        // that invariance is what makes the shared drive phase legal.
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 5);
        for _ in 0..5 {
            train.push_step(vec![0, 2, 4, 6]);
        }
        e.run_sample(&train, &Bound90, &mut NoGuard);
        assert_eq!(e.read_cache_stats().rebuilds, 1);
        let codes_before = e.crossbar().codes();
        let mut out = MultiMapResult::new();
        e.run_batch_multi_map(
            &[train.clone()],
            &[
                vec![(0, NeuronOp::VmemReset)],
                vec![(1, NeuronOp::VmemLeak)],
            ],
            &Bound90,
            &NoGuard,
            &mut out,
        );
        assert_eq!(
            e.read_cache_stats().rebuilds,
            1,
            "no rebuild for neuron-only maps"
        );
        assert_eq!(e.crossbar().codes(), codes_before);
    }

    #[test]
    fn engine_matches_float_simulator_on_clean_weights() {
        // The integer engine and the frozen float simulator should produce
        // very similar spike counts for the same input spike train.
        let cfg = SnnConfig::builder()
            .n_inputs(32)
            .n_neurons(8)
            .v_thresh(4.0)
            .v_leak(0.2)
            .v_inh(6.0)
            .t_refrac(3)
            .build()
            .unwrap();
        let mut rng = seeded_rng(7);
        let mut net = Network::new(cfg.clone(), &mut rng);
        net.set_frozen();
        let qn = QuantizedNetwork::from_network_default(&net);
        let mut engine = ComputeEngine::for_network(&qn).unwrap();

        let encoder = PoissonEncoder::new(0.4);
        let mut float_total = 0_u64;
        let mut int_total = 0_u64;
        for s in 0..20 {
            let img = vec![0.6_f32; 32];
            let train = encoder.encode(&img, 50, &mut seeded_rng(100 + s));
            let f = net.run_sample(&train);
            let i = engine.run_sample(&train, &DirectRead, &mut NoGuard);
            float_total += f.iter().map(|&c| c as u64).sum::<u64>();
            int_total += i.iter().map(|&c| c as u64).sum::<u64>();
        }
        assert!(float_total > 0);
        let ratio = int_total as f64 / float_total as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "integer engine diverges from float sim: {int_total} vs {float_total}"
        );
    }
}
