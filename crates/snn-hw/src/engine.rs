//! The SNN compute engine: crossbar + neuron datapaths + lateral
//! inhibition, operating in integer weight-code units.
//!
//! The engine is deliberately *logical-size*: it simulates the full M×N
//! synapse array of the deployed network bit-accurately, while the
//! *physical* 256×256 geometry only affects the latency/energy/area models
//! (time-multiplexing changes cost, not function — see
//! [`crate::mapping`]).
//!
//! # Hot path
//!
//! [`ComputeEngine::step`] and [`ComputeEngine::run_sample_into`] are the
//! simulation hot path of every fault-injection campaign, and are built to
//! be allocation-free and autovectorizable:
//!
//! * weight reads go through a precomputed 256-entry lookup table
//!   ([`WeightReadPath::table`]) — or a pure widening add when the path is
//!   the identity ([`WeightReadPath::is_identity`]) — instead of a
//!   per-element closure call;
//! * the `fired` list, inhibition mask, accumulators, and per-neuron spike
//!   counters are scratch buffers owned by the engine and reused across
//!   steps and samples.
//!
//! The original per-element formulation is retained as
//! [`ComputeEngine::step_reference`] / [`ComputeEngine::run_sample_reference`];
//! property tests assert the optimized path is spike-for-spike identical.

use crate::crossbar::Crossbar;
use crate::error::HwError;
use crate::neuron_unit::{NeuronHwParams, NeuronUnit};
use crate::params::EngineConfig;
use snn_sim::quant::QuantizedNetwork;
use snn_sim::spike::SpikeTrain;

/// Models the circuitry between a weight register and the column adder.
///
/// The baseline engine reads registers directly ([`DirectRead`]); the
/// SoftSNN-enhanced engine inserts a comparator + multiplexer here
/// (weight bounding). Implementations must be pure combinational logic:
/// same input code → same output code. That purity is what makes the
/// engine's table-driven hot path valid: [`table`](Self::table) captures
/// the entire input→output function in 256 entries.
pub trait WeightReadPath {
    /// Transforms a raw register code into the value fed to the adder.
    fn read(&self, code: u8) -> u8;

    /// The full 256-entry transfer function of this read path.
    ///
    /// The default implementation evaluates [`read`](Self::read) for every
    /// code; stateless paths get this for free, and paths with stored
    /// configuration (e.g. bounding registers) may override it with a
    /// cached table.
    fn table(&self) -> [u8; 256] {
        let mut t = [0_u8; 256];
        for (code, slot) in t.iter_mut().enumerate() {
            *slot = self.read(code as u8);
        }
        t
    }

    /// Whether this path is the identity function. Identity paths skip the
    /// table entirely and accumulate with a pure widening add.
    fn is_identity(&self) -> bool {
        false
    }

    /// If this path is a comparator + multiplexer (`code > threshold →
    /// default` — the shape of Eq. 1 weight bounding), its two hardware
    /// register values. The engine lowers such paths to a branchless
    /// compare/select kernel, which vectorizes where a general table
    /// gather does not.
    fn bound_params(&self) -> Option<(u8, u8)> {
        None
    }
}

/// The accumulation kernel resolved from a [`WeightReadPath`], once per
/// step or sample (not per element).
enum ReadKernel {
    /// Identity path: pure widening add.
    Direct,
    /// Comparator + mux: branchless compare/select.
    Bounded {
        /// `wgh_th` register.
        threshold: u8,
        /// `wgh_def` register.
        default: u8,
    },
    /// Arbitrary combinational logic: 256-entry table (boxed so the
    /// common kernels stay pointer-sized; resolved once per step/sample,
    /// so the allocation is off the per-element path).
    Table(Box<[u8; 256]>),
}

impl ReadKernel {
    fn resolve<P: WeightReadPath>(path: &P) -> Self {
        if path.is_identity() {
            ReadKernel::Direct
        } else if let Some((threshold, default)) = path.bound_params() {
            ReadKernel::Bounded { threshold, default }
        } else {
            ReadKernel::Table(Box::new(path.table()))
        }
    }
}

/// The baseline read path: registers feed the adders unmodified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectRead;

impl WeightReadPath for DirectRead {
    #[inline]
    fn read(&self, code: u8) -> u8 {
        code
    }

    #[inline]
    fn is_identity(&self) -> bool {
        true
    }
}

/// Observes each neuron's `Vmem ≥ Vth` comparator output every cycle and
/// can veto spike generation.
///
/// The SoftSNN neuron protection (faulty-reset monitor) is implemented as
/// a `SpikeGuard` in `softsnn-core`. The guard is stateful: per the paper,
/// a tripped monitor keeps spike generation disabled until the neuron's
/// parameters are replaced ([`SpikeGuard::on_param_reload`]).
pub trait SpikeGuard {
    /// Called once per neuron per cycle with that cycle's comparator
    /// output. Returns whether the neuron may emit a spike this cycle.
    fn allow_spike(&mut self, neuron: usize, cmp_out: bool) -> bool;

    /// Called when the engine reloads parameters (heals monitor latches).
    fn on_param_reload(&mut self) {}
}

/// A guard that never vetoes (the baseline engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoGuard;

impl SpikeGuard for NoGuard {
    #[inline]
    fn allow_spike(&mut self, _neuron: usize, _cmp_out: bool) -> bool {
        true
    }
}

/// The compute engine of the paper's Fig. 5, in integer arithmetic.
///
/// # Examples
///
/// ```
/// use snn_hw::engine::{ComputeEngine, DirectRead, NoGuard};
/// use snn_sim::{config::SnnConfig, network::Network, rng::seeded_rng};
/// use snn_sim::quant::QuantizedNetwork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SnnConfig::builder().n_inputs(8).n_neurons(2).build()?;
/// let net = Network::new(cfg, &mut seeded_rng(1));
/// let qn = QuantizedNetwork::from_network_default(&net);
/// let mut engine = ComputeEngine::for_network(&qn)?;
/// engine.step(&[0, 3, 5], &DirectRead, &mut NoGuard);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ComputeEngine {
    physical: EngineConfig,
    n_inputs: usize,
    n_neurons: usize,
    crossbar: Crossbar,
    v_thresh: Vec<i32>,
    hw: NeuronHwParams,
    neurons: Vec<NeuronUnit>,
    clean_codes: Vec<u8>,
    // Scratch buffers reused across steps/samples (the hot path never
    // allocates). `fired_mask` entries are only ever true transiently
    // inside `step_into`.
    acc: Vec<i32>,
    fired: Vec<u32>,
    fired_mask: Vec<bool>,
    counts: Vec<u32>,
}

impl ComputeEngine {
    /// Builds an engine for a quantized network using the paper's physical
    /// geometry ([`EngineConfig::PAPER`]).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if the network fails validation.
    pub fn for_network(qn: &QuantizedNetwork) -> Result<Self, HwError> {
        Self::with_config(EngineConfig::PAPER, qn)
    }

    /// Builds an engine with an explicit physical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if the network fails validation.
    pub fn with_config(physical: EngineConfig, qn: &QuantizedNetwork) -> Result<Self, HwError> {
        qn.validate().map_err(|e| HwError::InvalidNetwork {
            detail: e.to_string(),
        })?;
        let crossbar = Crossbar::from_codes(qn.n_inputs, qn.n_neurons, &qn.codes)?;
        Ok(Self {
            physical,
            n_inputs: qn.n_inputs,
            n_neurons: qn.n_neurons,
            crossbar,
            v_thresh: qn.neuron.v_thresh.clone(),
            hw: NeuronHwParams {
                v_reset: qn.neuron.v_reset,
                v_leak: qn.neuron.v_leak,
                t_refrac: qn.neuron.t_refrac,
                v_inh: qn.neuron.v_inh,
            },
            neurons: vec![NeuronUnit::new(); qn.n_neurons],
            clean_codes: qn.codes.clone(),
            acc: vec![0; qn.n_neurons],
            fired: Vec::with_capacity(qn.n_neurons),
            fired_mask: vec![false; qn.n_neurons],
            counts: vec![0; qn.n_neurons],
        })
    }

    /// Logical input count.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Logical neuron count.
    pub fn n_neurons(&self) -> usize {
        self.n_neurons
    }

    /// Physical engine geometry (for the cost models).
    pub fn physical(&self) -> EngineConfig {
        self.physical
    }

    /// The weight crossbar (fault injection reads/writes registers here).
    pub fn crossbar(&self) -> &Crossbar {
        &self.crossbar
    }

    /// Mutable crossbar access for fault injection.
    pub fn crossbar_mut(&mut self) -> &mut Crossbar {
        &mut self.crossbar
    }

    /// The neuron units (fault injection sets op-fault flags here).
    pub fn neurons(&self) -> &[NeuronUnit] {
        &self.neurons
    }

    /// Mutable neuron access for fault injection.
    pub fn neurons_mut(&mut self) -> &mut [NeuronUnit] {
        &mut self.neurons
    }

    /// Per-neuron thresholds in code units.
    pub fn thresholds(&self) -> &[i32] {
        &self.v_thresh
    }

    /// Shared integer neuron parameters.
    pub fn hw_params(&self) -> NeuronHwParams {
        self.hw
    }

    /// Parameter replacement: rewrites every weight register from the
    /// clean deployment image and clears all neuron-operation faults (the
    /// paper's healing event for both fault classes). Also notifies
    /// `guard` so monitor latches reset.
    pub fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G) {
        self.crossbar
            .reload(&self.clean_codes)
            .expect("clean image always matches crossbar shape");
        for n in &mut self.neurons {
            n.clear_faults();
            n.reset_state();
        }
        guard.on_param_reload();
    }

    /// Clears membrane/refractory state (between samples). Persisted
    /// faults — flipped register bits and stuck neuron ops — remain, per
    /// the paper's persistence semantics.
    pub fn reset_state(&mut self) {
        for n in &mut self.neurons {
            n.reset_state();
        }
    }

    /// Advances the engine one timestep.
    ///
    /// `active_rows` lists the input channels spiking this cycle. Returns
    /// the indices of neurons that emitted an *output* spike (after
    /// spike-generation faults and the guard's veto). Lateral inhibition
    /// is driven by output spikes, so a neuron whose spike generator is
    /// faulty (or vetoed) does not inhibit its neighbours.
    ///
    /// The returned slice borrows the engine's scratch buffer and is valid
    /// until the next `step`/`run_sample` call; copy it out
    /// (`.to_vec()`) if you need it longer.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn step<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        let kernel = ReadKernel::resolve(path);
        self.step_into(active_rows, &kernel, guard);
        &self.fired
    }

    /// The engine-internal step: accumulate active rows through the
    /// resolved kernel, advance every neuron, apply lateral inhibition.
    /// Leaves the fired indices in `self.fired`.
    fn step_into<G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        kernel: &ReadKernel,
        guard: &mut G,
    ) {
        self.acc.fill(0);
        match kernel {
            ReadKernel::Direct => {
                for &row in active_rows {
                    self.crossbar
                        .accumulate_row_direct(row as usize, &mut self.acc);
                }
            }
            ReadKernel::Bounded { threshold, default } => {
                for &row in active_rows {
                    self.crossbar.accumulate_row_bounded(
                        row as usize,
                        *threshold,
                        *default,
                        &mut self.acc,
                    );
                }
            }
            ReadKernel::Table(lut) => {
                for &row in active_rows {
                    self.crossbar
                        .accumulate_row_lut(row as usize, lut, &mut self.acc);
                }
            }
        }
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        for j in 0..self.n_neurons {
            let out = self.neurons[j].step(self.acc[j] as i64, self.v_thresh[j], &self.hw);
            let allowed = guard.allow_spike(j, out.cmp_out);
            if out.spike && allowed {
                fired.push(j as u32);
            }
        }
        if !fired.is_empty() && self.hw.v_inh > 0 {
            let total_inh = self.hw.v_inh.saturating_mul(fired.len() as i32);
            for &j in &fired {
                self.fired_mask[j as usize] = true;
            }
            for (j, n) in self.neurons.iter_mut().enumerate() {
                if !self.fired_mask[j] {
                    n.inhibit(total_inh);
                }
            }
            for &j in &fired {
                self.fired_mask[j as usize] = false;
            }
        }
        self.fired = fired;
    }

    /// Presents one encoded sample (membrane state is cleared first) and
    /// returns per-neuron output spike counts as a borrow of the engine's
    /// scratch counter buffer — the allocation-free form of
    /// [`run_sample`](Self::run_sample). The slice is valid until the next
    /// `step`/`run_sample` call.
    pub fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        self.reset_state();
        self.counts.fill(0);
        let kernel = ReadKernel::resolve(path);
        for step_idx in 0..train.n_steps() {
            self.step_into(train.step(step_idx), &kernel, guard);
            for i in 0..self.fired.len() {
                self.counts[self.fired[i] as usize] += 1;
            }
        }
        &self.counts
    }

    /// Presents one encoded sample (membrane state is cleared first) and
    /// returns per-neuron output spike counts as an owned vector.
    pub fn run_sample<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        self.run_sample_into(train, path, guard).to_vec()
    }

    /// Reference (pre-optimization) formulation of [`step`](Self::step):
    /// per-element closure reads and per-call allocations. Kept as the
    /// behavioral oracle for the equivalence property tests; not a hot
    /// path.
    pub fn step_reference<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        active_rows: &[u32],
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        let mut acc = vec![0_i64; self.n_neurons];
        for &row in active_rows {
            self.crossbar
                .accumulate_row(row as usize, |c| path.read(c), &mut acc);
        }
        let mut fired: Vec<u32> = Vec::new();
        for (j, &drive) in acc.iter().enumerate() {
            let out = self.neurons[j].step(drive, self.v_thresh[j], &self.hw);
            let allowed = guard.allow_spike(j, out.cmp_out);
            if out.spike && allowed {
                fired.push(j as u32);
            }
        }
        if !fired.is_empty() && self.hw.v_inh > 0 {
            let total_inh = self.hw.v_inh.saturating_mul(fired.len() as i32);
            let mut is_fired = vec![false; self.n_neurons];
            for &j in &fired {
                is_fired[j as usize] = true;
            }
            for (j, n) in self.neurons.iter_mut().enumerate() {
                if !is_fired[j] {
                    n.inhibit(total_inh);
                }
            }
        }
        fired
    }

    /// Reference formulation of [`run_sample`](Self::run_sample), built on
    /// [`step_reference`](Self::step_reference).
    pub fn run_sample_reference<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        self.reset_state();
        let mut counts = vec![0_u32; self.n_neurons];
        for step in 0..train.n_steps() {
            for j in self.step_reference(train.step(step), path, guard) {
                counts[j as usize] += 1;
            }
        }
        counts
    }

    /// Per-neuron membrane potentials (for trajectory equivalence tests).
    pub fn membranes(&self) -> Vec<i32> {
        self.neurons.iter().map(|n| n.vmem).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron_unit::NeuronOp;
    use snn_sim::config::SnnConfig;
    use snn_sim::encoding::PoissonEncoder;
    use snn_sim::network::Network;
    use snn_sim::quant::QuantizedNetwork;
    use snn_sim::rng::seeded_rng;

    fn small_engine() -> ComputeEngine {
        let cfg = SnnConfig::builder()
            .n_inputs(8)
            .n_neurons(4)
            .v_thresh(2.0)
            .v_leak(0.1)
            .v_inh(4.0)
            .t_refrac(2)
            .build()
            .unwrap();
        let net = Network::from_parts(cfg.clone(), vec![0.5; cfg.n_synapses()]).unwrap();
        let qn = QuantizedNetwork::from_network_default(&net);
        ComputeEngine::for_network(&qn).unwrap()
    }

    #[test]
    fn saturating_input_elicits_spikes() {
        let mut e = small_engine();
        let mut total = 0;
        for _ in 0..20 {
            total += e
                .step(&[0, 1, 2, 3, 4, 5, 6, 7], &DirectRead, &mut NoGuard)
                .len();
        }
        assert!(total > 0);
    }

    #[test]
    fn silent_input_no_spikes() {
        let mut e = small_engine();
        for _ in 0..20 {
            assert!(e.step(&[], &DirectRead, &mut NoGuard).is_empty());
        }
    }

    #[test]
    fn run_sample_resets_state_between_samples() {
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 2);
        train.push_step(vec![0, 1, 2, 3]);
        train.push_step(vec![0, 1, 2, 3]);
        let a = e.run_sample(&train, &DirectRead, &mut NoGuard);
        let b = e.run_sample(&train, &DirectRead, &mut NoGuard);
        assert_eq!(a, b, "same input after reset must give same counts");
    }

    #[test]
    fn vr_fault_causes_burst_and_dominates() {
        let mut e = small_engine();
        e.neurons_mut()[1].faults.set(NeuronOp::VmemReset);
        let mut train = SpikeTrain::new(8, 30);
        for _ in 0..30 {
            train.push_step(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
        let counts = e.run_sample(&train, &DirectRead, &mut NoGuard);
        let others_max = counts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != 1)
            .map(|(_, &c)| c)
            .max()
            .unwrap();
        assert!(
            counts[1] > 2 * others_max,
            "bursting neuron must dominate: {counts:?}"
        );
    }

    #[test]
    fn sg_fault_silences_neuron() {
        let mut e = small_engine();
        e.neurons_mut()[2].faults.set(NeuronOp::SpikeGeneration);
        let mut train = SpikeTrain::new(8, 30);
        for _ in 0..30 {
            train.push_step(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
        let counts = e.run_sample(&train, &DirectRead, &mut NoGuard);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn reload_parameters_heals_faults() {
        let mut e = small_engine();
        e.crossbar_mut().flip_bit(0, 0, 7).unwrap();
        e.neurons_mut()[0].faults.set(NeuronOp::VmemReset);
        let dirty = e.crossbar().read(0, 0);
        e.reload_parameters(&mut NoGuard);
        assert_ne!(e.crossbar().read(0, 0), dirty);
        assert!(!e.neurons()[0].faults.any());
    }

    #[test]
    fn guard_vetoes_spikes() {
        struct MuteAll;
        impl SpikeGuard for MuteAll {
            fn allow_spike(&mut self, _n: usize, _c: bool) -> bool {
                false
            }
        }
        let mut e = small_engine();
        let mut total = 0;
        for _ in 0..20 {
            total += e
                .step(&[0, 1, 2, 3, 4, 5, 6, 7], &DirectRead, &mut MuteAll)
                .len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn read_path_bounding_reduces_drive() {
        // A path clamping codes above 64 to 0 must slow firing down.
        struct Clamp;
        impl WeightReadPath for Clamp {
            fn read(&self, code: u8) -> u8 {
                if code >= 64 {
                    0
                } else {
                    code
                }
            }
        }
        let mut plain = small_engine();
        let mut clamped = small_engine();
        let mut train = SpikeTrain::new(8, 30);
        for _ in 0..30 {
            train.push_step(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
        let a: u32 = plain
            .run_sample(&train, &DirectRead, &mut NoGuard)
            .iter()
            .sum();
        let b: u32 = clamped
            .run_sample(&train, &Clamp, &mut NoGuard)
            .iter()
            .sum();
        assert!(b < a, "clamped engine must fire less ({b} vs {a})");
    }

    #[test]
    fn optimized_step_matches_reference() {
        // Same engine state, same inputs: the table-driven step and the
        // closure-based reference must agree spike for spike.
        struct Clamp;
        impl WeightReadPath for Clamp {
            fn read(&self, code: u8) -> u8 {
                if code >= 100 {
                    13
                } else {
                    code
                }
            }
        }
        let mut fast = small_engine();
        let mut slow = small_engine();
        fast.crossbar_mut().flip_bit(3, 1, 7).unwrap();
        slow.crossbar_mut().flip_bit(3, 1, 7).unwrap();
        for t in 0..40 {
            let rows: Vec<u32> = (0..8).filter(|r| (t + r) % 3 != 0).collect();
            let a = fast.step(&rows, &Clamp, &mut NoGuard).to_vec();
            let b = slow.step_reference(&rows, &Clamp, &mut NoGuard);
            assert_eq!(a, b, "step {t}");
            assert_eq!(fast.membranes(), slow.membranes(), "step {t}");
        }
    }

    #[test]
    fn run_sample_into_matches_owned_and_reference() {
        let mut e = small_engine();
        let mut train = SpikeTrain::new(8, 20);
        for t in 0..20_u32 {
            train.push_step((0..8).filter(|r| (t + r) % 2 == 0).collect());
        }
        let owned = e.run_sample(&train, &DirectRead, &mut NoGuard);
        let reference = e.run_sample_reference(&train, &DirectRead, &mut NoGuard);
        let into = e
            .run_sample_into(&train, &DirectRead, &mut NoGuard)
            .to_vec();
        assert_eq!(owned, reference);
        assert_eq!(owned, into);
    }

    #[test]
    fn direct_read_table_is_identity() {
        let t = DirectRead.table();
        for (i, &v) in t.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
        assert!(DirectRead.is_identity());
    }

    #[test]
    fn engine_matches_float_simulator_on_clean_weights() {
        // The integer engine and the frozen float simulator should produce
        // very similar spike counts for the same input spike train.
        let cfg = SnnConfig::builder()
            .n_inputs(32)
            .n_neurons(8)
            .v_thresh(4.0)
            .v_leak(0.2)
            .v_inh(6.0)
            .t_refrac(3)
            .build()
            .unwrap();
        let mut rng = seeded_rng(7);
        let mut net = Network::new(cfg.clone(), &mut rng);
        net.set_frozen();
        let qn = QuantizedNetwork::from_network_default(&net);
        let mut engine = ComputeEngine::for_network(&qn).unwrap();

        let encoder = PoissonEncoder::new(0.4);
        let mut float_total = 0_u64;
        let mut int_total = 0_u64;
        for s in 0..20 {
            let img = vec![0.6_f32; 32];
            let train = encoder.encode(&img, 50, &mut seeded_rng(100 + s));
            let f = net.run_sample(&train);
            let i = engine.run_sample(&train, &DirectRead, &mut NoGuard);
            float_total += f.iter().map(|&c| c as u64).sum::<u64>();
            int_total += i.iter().map(|&c| c as u64).sum::<u64>();
        }
        assert!(float_total > 0);
        let ratio = int_total as f64 / float_total as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "integer engine diverges from float sim: {int_total} vs {float_total}"
        );
    }
}
