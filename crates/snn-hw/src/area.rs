//! Engine area model (the Fig. 14(c) reproduction).

use crate::components::{baseline, EngineEnhancement, GE_AREA_UM2};
use crate::params::EngineConfig;

/// Area breakdown of a (possibly enhanced) compute engine, in GE.
///
/// # Examples
///
/// ```
/// use snn_hw::area::engine_area;
/// use snn_hw::components::EngineEnhancement;
/// use snn_hw::params::EngineConfig;
///
/// let base = engine_area(EngineConfig::PAPER, &EngineEnhancement::none());
/// assert!(base.total_ge() > 1e6); // a 64k-synapse crossbar is large
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Baseline synapse crossbar (registers + adders).
    pub synapse_array_ge: f64,
    /// Baseline neuron datapaths.
    pub neurons_ge: f64,
    /// Control/routing overhead.
    pub control_ge: f64,
    /// Added (hardened) enhancement logic.
    pub enhancement_ge: f64,
}

impl AreaBreakdown {
    /// Total area in gate equivalents.
    pub fn total_ge(&self) -> f64 {
        self.synapse_array_ge + self.neurons_ge + self.control_ge + self.enhancement_ge
    }

    /// Total area in µm² (65 nm representative).
    pub fn total_um2(&self) -> f64 {
        self.total_ge() * GE_AREA_UM2
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }

    /// Ratio of this design's area to a reference design's.
    pub fn ratio_to(&self, reference: &AreaBreakdown) -> f64 {
        self.total_ge() / reference.total_ge()
    }
}

/// Computes the area of the engine with the given enhancement attached.
pub fn engine_area(cfg: EngineConfig, enhancement: &EngineEnhancement) -> AreaBreakdown {
    let n_syn = cfg.n_synapses() as f64;
    let n_neu = cfg.cols as f64;
    let synapse_array_ge =
        n_syn * (baseline::WEIGHT_REGISTER.area_ge() + baseline::COLUMN_ADDER.area_ge());
    let neurons_ge = n_neu * baseline::NEURON_DATAPATH.area_ge();
    let control_ge = baseline::CONTROL_FRACTION * synapse_array_ge;
    let enhancement_ge = n_syn
        * enhancement
            .per_synapse
            .iter()
            .map(|c| c.area_ge())
            .sum::<f64>()
        + n_neu
            * enhancement
                .per_neuron
                .iter()
                .map(|c| c.area_ge())
                .sum::<f64>()
        + enhancement.shared.iter().map(|c| c.area_ge()).sum::<f64>();
    AreaBreakdown {
        synapse_array_ge,
        neurons_ge,
        control_ge,
        enhancement_ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::enhancement;

    #[test]
    fn baseline_has_no_enhancement_area() {
        let a = engine_area(EngineConfig::PAPER, &EngineEnhancement::none());
        assert_eq!(a.enhancement_ge, 0.0);
    }

    #[test]
    fn re_execution_has_baseline_area() {
        let base = engine_area(EngineConfig::PAPER, &EngineEnhancement::none());
        let re = engine_area(EngineConfig::PAPER, &EngineEnhancement::re_execution(3));
        assert!(
            (re.ratio_to(&base) - 1.0).abs() < 1e-12,
            "paper Fig. 14(c): 1.00"
        );
    }

    #[test]
    fn synapse_enhancements_dominate_added_area() {
        let enh = EngineEnhancement {
            name: "test".into(),
            per_synapse: vec![
                enhancement::COMPARATOR.hardened(),
                enhancement::MUX_CONST0.hardened(),
            ],
            per_neuron: vec![enhancement::NEURON_PROTECTION.hardened()],
            shared: vec![enhancement::SHARED_REGISTER.hardened()],
            clock_factor: 1.0,
            executions: 1,
        };
        let a = engine_area(EngineConfig::PAPER, &enh);
        // 64k synapses vs 256 neurons: synapse adds must dominate.
        let per_neuron_total = 256.0 * enhancement::NEURON_PROTECTION.hardened().area_ge();
        assert!(a.enhancement_ge > 10.0 * per_neuron_total);
    }

    #[test]
    fn crossbar_dominates_engine_area() {
        let a = engine_area(EngineConfig::PAPER, &EngineEnhancement::none());
        assert!(a.synapse_array_ge > 0.9 * a.total_ge());
    }

    #[test]
    fn mm2_conversion_is_consistent() {
        let a = engine_area(EngineConfig::PAPER, &EngineEnhancement::none());
        assert!((a.total_mm2() - a.total_um2() / 1e6).abs() < 1e-12);
    }
}
