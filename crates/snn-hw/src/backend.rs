//! The engine-backend abstraction: dense and event-driven engines,
//! interchangeable per workload.
//!
//! [`EngineBackend`] covers the evaluate entry points a deployment (or a
//! grid shard) drives — sample, batch, multi-map, the heal-on-entry
//! `reload_parameters`, and `reset_state` — so callers pick a backend
//! per workload without forking their evaluation code. [`AnyBackend`]
//! is the concrete closed-world container (the trait's generic methods
//! keep guard/path static dispatch, so it cannot be a trait object);
//! [`AnyBackend::set_kind`] swaps representations in place while
//! preserving engine state, faults, and delay-free results exactly.
//!
//! Picking a backend: the dense [`ComputeEngine`] wins when most cycles
//! carry input (its batched/multi-map passes amortize the drive phase
//! across samples and fault maps); the [`EventEngine`] wins when most
//! cycles are silent (it skips the whole neuron phase on provably-silent
//! cycles and lazily replays leak), and it is the only backend that can
//! express per-synapse delays. On delay-free workloads both produce
//! bit-identical spikes, counts, and guard decisions.

use crate::engine::{
    BatchResult, ComputeEngine, MultiMapResult, NeuronFaultOverlay, SpikeGuard, WeightReadPath,
};
use crate::event::EventEngine;
use snn_sim::spike::SpikeTrain;

/// The evaluate entry points every engine backend provides. All methods
/// keep the dense engine's contracts: sample runs reset state on entry,
/// batch/multi-map runs are per-sample-guard-clone equivalent and reset
/// state on exit, and `reload_parameters` is the heal-on-entry point
/// that makes shard-level state reuse sound.
pub trait EngineBackend {
    /// Presents one encoded sample; returns per-neuron output spike
    /// counts borrowed from the backend's scratch (valid until the next
    /// run).
    fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32];

    /// Evaluates a batch of samples, each under a fresh clone of
    /// `guard`, into `out`.
    fn run_batch_into<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
        out: &mut BatchResult,
    );

    /// Evaluates every (fault-map, sample) pair into `out`; fault state
    /// present before the call is restored after it.
    fn run_batch_multi_map<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
        out: &mut MultiMapResult,
    );

    /// Parameter replacement (the paper's healing event): clean crossbar
    /// image, cleared neuron faults, guard latches reset. Every evaluate
    /// path heals through this first — on every backend.
    fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G);

    /// Clears membrane/refractory state; persisted faults remain.
    fn reset_state(&mut self);

    /// The underlying dense engine — the fault-injection surface shared
    /// by every backend.
    fn engine(&self) -> &ComputeEngine;

    /// Mutable access to the underlying dense engine (fault injection,
    /// crossbar access). Mutations stay coherent with backend-compiled
    /// state via the engine's mutation epoch.
    fn engine_mut(&mut self) -> &mut ComputeEngine;
}

impl EngineBackend for ComputeEngine {
    fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        ComputeEngine::run_sample_into(self, train, path, guard)
    }

    fn run_batch_into<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
        out: &mut BatchResult,
    ) {
        ComputeEngine::run_batch_into(self, trains, path, guard, out);
    }

    fn run_batch_multi_map<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
        out: &mut MultiMapResult,
    ) {
        ComputeEngine::run_batch_multi_map(self, trains, maps, path, guard, out);
    }

    fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G) {
        ComputeEngine::reload_parameters(self, guard);
    }

    fn reset_state(&mut self) {
        ComputeEngine::reset_state(self);
    }

    fn engine(&self) -> &ComputeEngine {
        self
    }

    fn engine_mut(&mut self) -> &mut ComputeEngine {
        self
    }
}

impl EngineBackend for EventEngine {
    fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        EventEngine::run_sample_into(self, train, path, guard)
    }

    fn run_batch_into<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
        out: &mut BatchResult,
    ) {
        EventEngine::run_batch_into(self, trains, path, guard, out);
    }

    fn run_batch_multi_map<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
        out: &mut MultiMapResult,
    ) {
        EventEngine::run_batch_multi_map(self, trains, maps, path, guard, out);
    }

    fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G) {
        EventEngine::reload_parameters(self, guard);
    }

    fn reset_state(&mut self) {
        EventEngine::reset_state(self);
    }

    fn engine(&self) -> &ComputeEngine {
        EventEngine::engine(self)
    }

    fn engine_mut(&mut self) -> &mut ComputeEngine {
        EventEngine::engine_mut(self)
    }
}

/// Which engine backend a deployment (or shard) evaluates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineBackendKind {
    /// The dense per-cycle [`ComputeEngine`] (batched/multi-map fast
    /// paths; every neuron stepped every cycle).
    Dense,
    /// The event-driven sparse [`EventEngine`] (silent-cycle skipping,
    /// lazy leak, per-synapse delays).
    Event,
}

/// A closed-world backend container: one of the concrete backends,
/// switchable in place. Deployment owners hold this so backend choice
/// is a runtime knob, not a type parameter.
// Both variants embed a full `ComputeEngine` (the event engine wraps
// one), so the size gap is bounded bookkeeping, and the value is moved
// only at construction and `set_kind` — boxing would instead tax every
// evaluate call with an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyBackend {
    /// Dense per-cycle engine.
    Dense(ComputeEngine),
    /// Event-driven sparse engine.
    Event(EventEngine),
}

impl AnyBackend {
    /// Wraps a dense engine (the default backend).
    pub fn dense(engine: ComputeEngine) -> Self {
        AnyBackend::Dense(engine)
    }

    /// The active backend kind.
    pub fn kind(&self) -> EngineBackendKind {
        match self {
            AnyBackend::Dense(_) => EngineBackendKind::Dense,
            AnyBackend::Event(_) => EngineBackendKind::Event,
        }
    }

    /// Switches the active backend in place, preserving the wrapped
    /// engine (state, faults, crossbar, tuning) exactly. Dropping back
    /// to [`EngineBackendKind::Dense`] discards delay configuration.
    pub fn set_kind(&mut self, kind: EngineBackendKind) {
        if self.kind() == kind {
            return;
        }
        let current = std::mem::replace(self, AnyBackend::Dense(ComputeEngine::placeholder()));
        *self = match current {
            AnyBackend::Dense(e) => AnyBackend::Event(EventEngine::new(e)),
            AnyBackend::Event(ev) => AnyBackend::Dense(ev.into_inner()),
        };
    }

    /// The event backend's delay/sparsity surface, when active.
    pub fn event_mut(&mut self) -> Option<&mut EventEngine> {
        match self {
            AnyBackend::Dense(_) => None,
            AnyBackend::Event(ev) => Some(ev),
        }
    }
}

impl EngineBackend for AnyBackend {
    fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        match self {
            AnyBackend::Dense(e) => e.run_sample_into(train, path, guard),
            AnyBackend::Event(ev) => ev.run_sample_into(train, path, guard),
        }
    }

    fn run_batch_into<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
        out: &mut BatchResult,
    ) {
        match self {
            AnyBackend::Dense(e) => e.run_batch_into(trains, path, guard, out),
            AnyBackend::Event(ev) => ev.run_batch_into(trains, path, guard, out),
        }
    }

    fn run_batch_multi_map<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
        out: &mut MultiMapResult,
    ) {
        match self {
            AnyBackend::Dense(e) => e.run_batch_multi_map(trains, maps, path, guard, out),
            AnyBackend::Event(ev) => ev.run_batch_multi_map(trains, maps, path, guard, out),
        }
    }

    fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G) {
        match self {
            AnyBackend::Dense(e) => e.reload_parameters(guard),
            AnyBackend::Event(ev) => ev.reload_parameters(guard),
        }
    }

    fn reset_state(&mut self) {
        match self {
            AnyBackend::Dense(e) => e.reset_state(),
            AnyBackend::Event(ev) => ev.reset_state(),
        }
    }

    fn engine(&self) -> &ComputeEngine {
        match self {
            AnyBackend::Dense(e) => e,
            AnyBackend::Event(ev) => ev.engine(),
        }
    }

    fn engine_mut(&mut self) -> &mut ComputeEngine {
        match self {
            AnyBackend::Dense(e) => e,
            AnyBackend::Event(ev) => ev.engine_mut(),
        }
    }
}
