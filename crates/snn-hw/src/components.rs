//! Gate-equivalent component library and engine enhancement descriptions.
//!
//! This module replaces the paper's Cadence Genus + 65 nm CMOS library
//! flow with an analytical model: every circuit block is a [`Component`]
//! with a gate-equivalent (GE) count, a switching-activity factor for
//! dynamic power, and a hardened flag. The engine's area/power/latency are
//! composed from component counts exactly as the RTL of Fig. 5 composes
//! the circuits.
//!
//! **Calibration.** Absolute per-GE area/power constants are
//! representative of 65 nm standard cells; the *enhancement* component
//! sizes are calibrated so that the BnP-enhanced engines reproduce the
//! paper's reported relative overheads (area 1.14× for BnP1 and 1.18× for
//! BnP2/3 in Fig. 14(c); energy ≈ 1.3× / 1.56× in Fig. 14(b); clock-period
//! stretch ≈ 1.00× / 1.06× in Fig. 14(a)). This is the documented
//! substitution for the proprietary synthesis flow — see `DESIGN.md`.

/// One circuit block: GE count, switching activity, hardening flag.
///
/// # Examples
///
/// ```
/// use snn_hw::components::Component;
///
/// let c = Component::new("my-block", 10.0, 0.5);
/// assert_eq!(c.area_ge(), 10.0);
/// let hardened = c.hardened();
/// assert!(hardened.area_ge() > c.area_ge());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Human-readable block name (appears in synthesis-style reports).
    pub name: &'static str,
    /// Size in NAND2 gate equivalents.
    pub ge: f64,
    /// Fraction of gates toggling per cycle (dynamic-power activity).
    pub activity: f64,
    /// Whether the block uses radiation-hardened cells.
    pub is_hardened: bool,
}

/// Area of one NAND2 gate equivalent in 65 nm, µm² (representative).
pub const GE_AREA_UM2: f64 = 1.44;
/// Dynamic power per toggling GE at the nominal clock, µW (representative).
pub const DYN_POWER_PER_GE_UW: f64 = 0.35;
/// Nominal clock period, ns (≈ 500 MHz at 65 nm for this datapath).
pub const CLOCK_PERIOD_NS: f64 = 2.0;
/// Area penalty of radiation-hardened cells (resized transistors,
/// insulating substrates \[7,9\]).
pub const HARDENED_AREA_FACTOR: f64 = 1.2;
/// Power penalty of radiation-hardened cells.
pub const HARDENED_POWER_FACTOR: f64 = 2.0;

impl Component {
    /// Creates an unhardened component.
    pub const fn new(name: &'static str, ge: f64, activity: f64) -> Self {
        Self {
            name,
            ge,
            activity,
            is_hardened: false,
        }
    }

    /// Returns a radiation-hardened copy of this component.
    pub fn hardened(&self) -> Self {
        Self {
            is_hardened: true,
            ..self.clone()
        }
    }

    /// Effective area in GE (hardening inflates cell area).
    pub fn area_ge(&self) -> f64 {
        if self.is_hardened {
            self.ge * HARDENED_AREA_FACTOR
        } else {
            self.ge
        }
    }

    /// Effective area in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_ge() * GE_AREA_UM2
    }

    /// Dynamic power in µW (hardened cells burn more).
    pub fn power_uw(&self) -> f64 {
        let p = self.ge * self.activity * DYN_POWER_PER_GE_UW;
        if self.is_hardened {
            p * HARDENED_POWER_FACTOR
        } else {
            p
        }
    }
}

/// Baseline blocks of the unenhanced compute engine (Fig. 5).
pub mod baseline {
    use super::Component;

    /// 8-bit weight register (8 DFF).
    pub const WEIGHT_REGISTER: Component = Component::new("weight-register-8b", 40.0, 0.05);
    /// Per-synapse column accumulation adder.
    pub const COLUMN_ADDER: Component = Component::new("column-adder", 45.0, 0.5);
    /// One LIF neuron datapath (Vmem register, add/sub, comparator,
    /// refractory counter, spike gen).
    pub const NEURON_DATAPATH: Component = Component::new("lif-neuron", 400.0, 0.3);
    /// Fraction of crossbar area spent on control/routing overhead.
    pub const CONTROL_FRACTION: f64 = 0.02;
}

/// Enhancement blocks added by the SoftSNN BnP hardware (Fig. 11), all
/// radiation-hardened.
///
/// GE values are calibrated to the paper's 14 % / 18 % area overheads;
/// activities to its ≈1.3× / ≈1.56× energy overheads (see module docs).
pub mod enhancement {
    use super::Component;

    /// Per-synapse weight comparator (`wgh ≥ wgh_th`).
    pub const COMPARATOR: Component = Component::new("bnp-comparator-8b", 6.3, 0.35);
    /// Per-synapse constant-zero multiplexer (BnP1: AND-gating to zero).
    pub const MUX_CONST0: Component = Component::new("bnp-mux-const0", 4.0, 0.35);
    /// Per-synapse 2:1 multiplexer selecting `wgh_def` (BnP2/BnP3).
    pub const MUX_2TO1: Component = Component::new("bnp-mux-2to1-8b", 6.94, 0.55);
    /// Shared hardened 8-bit register (`wgh_th`, and `wgh_def` for BnP2/3).
    pub const SHARED_REGISTER: Component = Component::new("bnp-shared-reg-8b", 40.0, 0.05);
    /// Per-neuron protection logic (AND gate + output mux + 2-cycle
    /// monitor counter, Fig. 11(c)).
    pub const NEURON_PROTECTION: Component = Component::new("neuron-protect", 14.0, 0.3);
}

/// Describes the hardware added to the baseline engine by a mitigation
/// technique, plus its effect on the clock period.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineEnhancement {
    /// Display name (e.g. `"BnP1"`).
    pub name: String,
    /// Blocks replicated in every synapse.
    pub per_synapse: Vec<Component>,
    /// Blocks replicated in every neuron.
    pub per_neuron: Vec<Component>,
    /// Blocks instantiated once for the whole engine.
    pub shared: Vec<Component>,
    /// Clock-period stretch factor (1.0 = critical path untouched).
    pub clock_factor: f64,
    /// Execution count per inference (re-execution runs 3×).
    pub executions: u32,
}

impl EngineEnhancement {
    /// No enhancement: the baseline engine, single execution.
    pub fn none() -> Self {
        Self {
            name: "Baseline".to_owned(),
            per_synapse: Vec::new(),
            per_neuron: Vec::new(),
            shared: Vec::new(),
            clock_factor: 1.0,
            executions: 1,
        }
    }

    /// Pure re-execution: no hardware change, `n` executions.
    pub fn re_execution(n: u32) -> Self {
        Self {
            name: format!("Re-execution x{n}"),
            executions: n,
            ..Self::none()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardening_inflates_area_and_power() {
        let c = Component::new("x", 10.0, 0.5);
        let h = c.hardened();
        assert!((h.area_ge() - 12.0).abs() < 1e-9);
        assert!(h.power_uw() > c.power_uw() * 1.9);
    }

    #[test]
    fn baseline_synapse_is_register_plus_adder() {
        let syn = baseline::WEIGHT_REGISTER.ge + baseline::COLUMN_ADDER.ge;
        assert!((syn - 85.0).abs() < 1e-9);
    }

    #[test]
    fn none_enhancement_is_neutral() {
        let e = EngineEnhancement::none();
        assert_eq!(e.executions, 1);
        assert_eq!(e.clock_factor, 1.0);
        assert!(e.per_synapse.is_empty());
    }

    #[test]
    fn re_execution_multiplies_executions_only() {
        let e = EngineEnhancement::re_execution(3);
        assert_eq!(e.executions, 3);
        assert!(e.per_synapse.is_empty() && e.per_neuron.is_empty());
        assert_eq!(e.clock_factor, 1.0);
    }

    #[test]
    fn area_um2_uses_ge_constant() {
        let c = Component::new("x", 100.0, 0.1);
        assert!((c.area_um2() - 144.0).abs() < 1e-9);
    }
}
