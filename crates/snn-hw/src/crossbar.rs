//! The synapse crossbar: an M×N array of weight registers with per-column
//! accumulation (each synapse adds its weight to the running column sum, so
//! each neuron receives a single accumulated input — the routing
//! optimization described in the paper's Sec. 2.1).

use crate::error::HwError;
use crate::weight_register::WeightRegister;

/// An M×N crossbar of 8-bit weight registers, row-major
/// (`reg[row * cols + col]`). Rows are inputs, columns are neurons.
///
/// # Examples
///
/// ```
/// use snn_hw::crossbar::Crossbar;
///
/// let mut xbar = Crossbar::zeroed(2, 3);
/// xbar.write(0, 1, 40);
/// assert_eq!(xbar.read(0, 1), 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    regs: Vec<WeightRegister>,
}

impl Crossbar {
    /// Creates a crossbar with all registers zeroed.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            regs: vec![WeightRegister::default(); rows * cols],
        }
    }

    /// Creates a crossbar from row-major codes.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if `codes.len() != rows * cols`.
    pub fn from_codes(rows: usize, cols: usize, codes: &[u8]) -> Result<Self, HwError> {
        if codes.len() != rows * cols {
            return Err(HwError::InvalidNetwork {
                detail: format!(
                    "expected {} codes for a {rows}x{cols} crossbar, got {}",
                    rows * cols,
                    codes.len()
                ),
            });
        }
        Ok(Self {
            rows,
            cols,
            regs: codes.iter().map(|&c| WeightRegister::new(c)).collect(),
        })
    }

    /// Number of rows (inputs).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (neurons).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of synapses.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the crossbar holds zero synapses.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Reads the register at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn read(&self, row: usize, col: usize) -> u8 {
        assert!(row < self.rows && col < self.cols, "crossbar index");
        self.regs[row * self.cols + col].read()
    }

    /// Overwrites the register at (`row`, `col`) — clears any persisted
    /// bit-flip fault at that location.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn write(&mut self, row: usize, col: usize, code: u8) {
        assert!(row < self.rows && col < self.cols, "crossbar index");
        self.regs[row * self.cols + col].write(code);
    }

    /// Reloads every register from row-major codes (parameter replacement).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] on length mismatch.
    pub fn reload(&mut self, codes: &[u8]) -> Result<(), HwError> {
        if codes.len() != self.regs.len() {
            return Err(HwError::InvalidNetwork {
                detail: format!(
                    "reload expected {} codes, got {}",
                    self.regs.len(),
                    codes.len()
                ),
            });
        }
        for (reg, &c) in self.regs.iter_mut().zip(codes) {
            reg.write(c);
        }
        Ok(())
    }

    /// Flips one bit of the register at (`row`, `col`) — a soft error.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IndexOutOfRange`] for bad indices.
    pub fn flip_bit(&mut self, row: usize, col: usize, bit: u8) -> Result<(), HwError> {
        if row >= self.rows {
            return Err(HwError::IndexOutOfRange {
                what: "row",
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(HwError::IndexOutOfRange {
                what: "col",
                index: col,
                bound: self.cols,
            });
        }
        if bit >= 8 {
            return Err(HwError::IndexOutOfRange {
                what: "bit",
                index: bit as usize,
                bound: 8,
            });
        }
        self.regs[row * self.cols + col].flip_bit(bit);
        Ok(())
    }

    /// Accumulates the (read-path-transformed) weights of `row` into the
    /// per-column sums — the crossbar's column-adder operation for one
    /// spiking input row.
    ///
    /// `read_path` models the circuitry between the register and the
    /// column adder (identity for the baseline engine, bounding logic for
    /// the BnP-enhanced engine).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `acc.len() != cols`.
    pub fn accumulate_row(&self, row: usize, read_path: impl Fn(u8) -> u8, acc: &mut [i64]) {
        assert!(row < self.rows, "row index");
        assert_eq!(acc.len(), self.cols, "accumulator width");
        let base = row * self.cols;
        for (col, a) in acc.iter_mut().enumerate() {
            *a += read_path(self.regs[base + col].read()) as i64;
        }
    }

    /// All codes, row-major (for analysis and checkpointing).
    pub fn codes(&self) -> Vec<u8> {
        self.regs.iter().map(|r| r.read()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_codes_checks_len() {
        assert!(Crossbar::from_codes(2, 2, &[1, 2, 3]).is_err());
        assert!(Crossbar::from_codes(2, 2, &[1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn accumulate_row_sums_into_columns() {
        let xbar = Crossbar::from_codes(2, 3, &[1, 2, 3, 10, 20, 30]).unwrap();
        let mut acc = vec![0_i64; 3];
        xbar.accumulate_row(0, |c| c, &mut acc);
        xbar.accumulate_row(1, |c| c, &mut acc);
        assert_eq!(acc, vec![11, 22, 33]);
    }

    #[test]
    fn read_path_transforms_reads_without_touching_registers() {
        let xbar = Crossbar::from_codes(1, 2, &[200, 10]).unwrap();
        let mut acc = vec![0_i64; 2];
        // A bounding-style path: clamp anything >= 128 to 0.
        xbar.accumulate_row(0, |c| if c >= 128 { 0 } else { c }, &mut acc);
        assert_eq!(acc, vec![0, 10]);
        assert_eq!(xbar.read(0, 0), 200, "register content unchanged");
    }

    #[test]
    fn flip_bit_validates_indices() {
        let mut xbar = Crossbar::zeroed(2, 2);
        assert!(xbar.flip_bit(5, 0, 0).is_err());
        assert!(xbar.flip_bit(0, 5, 0).is_err());
        assert!(xbar.flip_bit(0, 0, 9).is_err());
        xbar.flip_bit(1, 1, 7).unwrap();
        assert_eq!(xbar.read(1, 1), 128);
    }

    #[test]
    fn reload_clears_faults() {
        let mut xbar = Crossbar::from_codes(1, 2, &[5, 6]).unwrap();
        xbar.flip_bit(0, 0, 7).unwrap();
        assert_eq!(xbar.read(0, 0), 133);
        xbar.reload(&[5, 6]).unwrap();
        assert_eq!(xbar.read(0, 0), 5);
    }

    #[test]
    fn codes_round_trip() {
        let codes = vec![9, 8, 7, 6];
        let xbar = Crossbar::from_codes(2, 2, &codes).unwrap();
        assert_eq!(xbar.codes(), codes);
    }
}
