//! The synapse crossbar: an M×N array of weight registers with per-column
//! accumulation (each synapse adds its weight to the running column sum, so
//! each neuron receives a single accumulated input — the routing
//! optimization described in the paper's Sec. 2.1).
//!
//! # Storage layout
//!
//! Weight codes are stored as one flat, row-major `Vec<u8>` rather than a
//! vector of register structs. [`WeightRegister`] is `#[repr(transparent)]`
//! over `u8`, so a register *view* of any cell is a free copy
//! ([`Crossbar::register`]), while the accumulation hot path
//! ([`Crossbar::accumulate_row_direct`], [`Crossbar::accumulate_row_lut`])
//! runs over a contiguous byte slice through the shared lane-explicit
//! bodies of [`crate::kernels`] — the same code the engine's blocked
//! drive phases use, so the per-row and blocked formulations cannot
//! drift apart.

use crate::error::HwError;
use crate::kernels::{self, AccumKernel};
use crate::weight_register::WeightRegister;

/// An M×N crossbar of 8-bit weight registers, row-major
/// (`codes[row * cols + col]`). Rows are inputs, columns are neurons.
///
/// # Examples
///
/// ```
/// use snn_hw::crossbar::Crossbar;
///
/// let mut xbar = Crossbar::zeroed(2, 3);
/// xbar.write(0, 1, 40);
/// assert_eq!(xbar.read(0, 1), 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    codes: Vec<u8>,
}

impl Crossbar {
    /// Creates a crossbar with all registers zeroed.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            codes: vec![0; rows * cols],
        }
    }

    /// Creates a crossbar from row-major codes.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] if `codes.len() != rows * cols`.
    pub fn from_codes(rows: usize, cols: usize, codes: &[u8]) -> Result<Self, HwError> {
        if codes.len() != rows * cols {
            return Err(HwError::InvalidNetwork {
                detail: format!(
                    "expected {} codes for a {rows}x{cols} crossbar, got {}",
                    rows * cols,
                    codes.len()
                ),
            });
        }
        Ok(Self {
            rows,
            cols,
            codes: codes.to_vec(),
        })
    }

    /// Number of rows (inputs).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (neurons).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of synapses.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the crossbar holds zero synapses.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reads the register at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn read(&self, row: usize, col: usize) -> u8 {
        assert!(row < self.rows && col < self.cols, "crossbar index");
        self.codes[row * self.cols + col]
    }

    /// A register view of the cell at (`row`, `col`) — a free copy, since
    /// [`WeightRegister`] is transparent over `u8`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn register(&self, row: usize, col: usize) -> WeightRegister {
        WeightRegister::new(self.read(row, col))
    }

    /// Overwrites the register at (`row`, `col`) — clears any persisted
    /// bit-flip fault at that location.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn write(&mut self, row: usize, col: usize, code: u8) {
        assert!(row < self.rows && col < self.cols, "crossbar index");
        self.codes[row * self.cols + col] = code;
    }

    /// Reloads every register from row-major codes (parameter replacement).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNetwork`] on length mismatch.
    pub fn reload(&mut self, codes: &[u8]) -> Result<(), HwError> {
        if codes.len() != self.codes.len() {
            return Err(HwError::InvalidNetwork {
                detail: format!(
                    "reload expected {} codes, got {}",
                    self.codes.len(),
                    codes.len()
                ),
            });
        }
        self.codes.copy_from_slice(codes);
        Ok(())
    }

    /// Flips one bit of the register at (`row`, `col`) — a soft error.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IndexOutOfRange`] for bad indices.
    pub fn flip_bit(&mut self, row: usize, col: usize, bit: u8) -> Result<(), HwError> {
        if row >= self.rows {
            return Err(HwError::IndexOutOfRange {
                what: "row",
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(HwError::IndexOutOfRange {
                what: "col",
                index: col,
                bound: self.cols,
            });
        }
        if bit >= 8 {
            return Err(HwError::IndexOutOfRange {
                what: "bit",
                index: bit as usize,
                bound: 8,
            });
        }
        let mut reg = WeightRegister::new(self.codes[row * self.cols + col]);
        reg.flip_bit(bit);
        self.codes[row * self.cols + col] = reg.read();
        Ok(())
    }

    /// Accumulates the (read-path-transformed) weights of `row` into the
    /// per-column sums — the crossbar's column-adder operation for one
    /// spiking input row.
    ///
    /// `read_path` models the circuitry between the register and the
    /// column adder (identity for the baseline engine, bounding logic for
    /// the BnP-enhanced engine).
    ///
    /// This is the *reference* per-element formulation; the engine's hot
    /// path uses [`accumulate_row_direct`](Self::accumulate_row_direct) and
    /// [`accumulate_row_lut`](Self::accumulate_row_lut), which are proven
    /// equivalent by property tests.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `acc.len() != cols`.
    pub fn accumulate_row(&self, row: usize, read_path: impl Fn(u8) -> u8, acc: &mut [i64]) {
        assert!(row < self.rows, "row index");
        assert_eq!(acc.len(), self.cols, "accumulator width");
        for (a, &c) in acc.iter_mut().zip(self.row_codes(row)) {
            *a += read_path(c) as i64;
        }
    }

    /// Accumulates `row` with the identity read path (baseline engine):
    /// a pure widening add over a contiguous byte slice, which the
    /// compiler autovectorizes.
    ///
    /// The fast kernels accumulate in `i32` (twice the SIMD width of
    /// `i64`): a full sample's column sum is bounded by `rows × 255`, so
    /// `i32` is exact for any crossbar under ~8.4M rows — orders of
    /// magnitude beyond the 784-input engines this workspace builds.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `acc.len() != cols`.
    #[inline]
    pub fn accumulate_row_direct(&self, row: usize, acc: &mut [i32]) {
        assert!(row < self.rows, "row index");
        assert_eq!(acc.len(), self.cols, "accumulator width");
        kernels::accumulate_row_direct(AccumKernel::Lanes8, self.row_codes(row), acc);
    }

    /// Accumulates `row` through a precomputed 256-entry read-path table
    /// (see [`crate::engine::WeightReadPath::table`]) — one indexed load
    /// per element instead of a closure call.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `acc.len() != cols`.
    #[inline]
    pub fn accumulate_row_lut(&self, row: usize, lut: &[u8; 256], acc: &mut [i32]) {
        assert!(row < self.rows, "row index");
        assert_eq!(acc.len(), self.cols, "accumulator width");
        kernels::accumulate_row_lut(AccumKernel::Lanes8, self.row_codes(row), lut, acc);
    }

    /// Accumulates `row` through a comparator+mux read path (`code >
    /// threshold → default`, the shape of every BnP bounding variant) —
    /// a branchless compare/select the compiler vectorizes, unlike the
    /// general table gather.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `acc.len() != cols`.
    #[inline]
    pub fn accumulate_row_bounded(&self, row: usize, threshold: u8, default: u8, acc: &mut [i32]) {
        assert!(row < self.rows, "row index");
        assert_eq!(acc.len(), self.cols, "accumulator width");
        kernels::accumulate_row_bounded(
            AccumKernel::Lanes8,
            self.row_codes(row),
            threshold,
            default,
            acc,
        );
    }

    /// The codes of one row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row_codes(&self, row: usize) -> &[u8] {
        let base = row * self.cols;
        &self.codes[base..base + self.cols]
    }

    /// All codes, row-major, borrowed (the allocation-free accessor).
    pub fn codes_slice(&self) -> &[u8] {
        &self.codes
    }

    /// All codes, row-major, as an owned copy (for analysis and
    /// checkpointing; prefer [`codes_slice`](Self::codes_slice) when a
    /// borrow suffices).
    pub fn codes(&self) -> Vec<u8> {
        self.codes.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_codes_checks_len() {
        assert!(Crossbar::from_codes(2, 2, &[1, 2, 3]).is_err());
        assert!(Crossbar::from_codes(2, 2, &[1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn accumulate_row_sums_into_columns() {
        let xbar = Crossbar::from_codes(2, 3, &[1, 2, 3, 10, 20, 30]).unwrap();
        let mut acc = vec![0_i64; 3];
        xbar.accumulate_row(0, |c| c, &mut acc);
        xbar.accumulate_row(1, |c| c, &mut acc);
        assert_eq!(acc, vec![11, 22, 33]);
    }

    #[test]
    fn direct_and_lut_paths_match_reference() {
        let codes: Vec<u8> = (0..=255).chain(0..=255).collect();
        let xbar = Crossbar::from_codes(4, 128, &codes).unwrap();
        let clamp = |c: u8| if c >= 128 { 7 } else { c };
        let mut lut = [0_u8; 256];
        for (i, slot) in lut.iter_mut().enumerate() {
            *slot = clamp(i as u8);
        }
        for row in 0..4 {
            let mut reference = vec![0_i64; 128];
            let mut via_lut = vec![0_i32; 128];
            let mut via_bounded = vec![0_i32; 128];
            xbar.accumulate_row(row, clamp, &mut reference);
            xbar.accumulate_row_lut(row, &lut, &mut via_lut);
            xbar.accumulate_row_bounded(row, 127, 7, &mut via_bounded);
            let widened: Vec<i64> = via_lut.iter().map(|&a| a as i64).collect();
            assert_eq!(reference, widened, "lut row {row}");
            assert_eq!(via_lut, via_bounded, "bounded row {row}");

            let mut ref_direct = vec![0_i64; 128];
            let mut direct = vec![0_i32; 128];
            xbar.accumulate_row(row, |c| c, &mut ref_direct);
            xbar.accumulate_row_direct(row, &mut direct);
            let widened: Vec<i64> = direct.iter().map(|&a| a as i64).collect();
            assert_eq!(ref_direct, widened, "direct row {row}");
        }
    }

    #[test]
    fn row_kernels_match_closure_oracle_on_ragged_widths() {
        // The per-row kernels route through the shared lane-explicit
        // bodies in `crate::kernels`; pin them against the closure-based
        // `accumulate_row` oracle across every column-count residue of
        // the lane width (including odd widths, which exercise the
        // Packed64 pair remainder and the Lanes8 scalar tail).
        let clamp = |c: u8| if c > 96 { 6 } else { c };
        let mut lut = [0_u8; 256];
        for (i, slot) in lut.iter_mut().enumerate() {
            *slot = clamp(i as u8);
        }
        for cols in 1..=17_usize {
            let codes: Vec<u8> = (0..3 * cols).map(|i| ((i * 41 + 93) % 256) as u8).collect();
            let xbar = Crossbar::from_codes(3, cols, &codes).unwrap();
            for row in 0..3 {
                let mut oracle_id = vec![0_i64; cols];
                let mut oracle_clamp = vec![0_i64; cols];
                xbar.accumulate_row(row, |c| c, &mut oracle_id);
                xbar.accumulate_row(row, clamp, &mut oracle_clamp);
                let mut direct = vec![0_i32; cols];
                let mut via_lut = vec![0_i32; cols];
                let mut via_bounded = vec![0_i32; cols];
                xbar.accumulate_row_direct(row, &mut direct);
                xbar.accumulate_row_lut(row, &lut, &mut via_lut);
                xbar.accumulate_row_bounded(row, 96, 6, &mut via_bounded);
                let widen = |v: &[i32]| v.iter().map(|&a| a as i64).collect::<Vec<_>>();
                assert_eq!(widen(&direct), oracle_id, "direct cols={cols} row={row}");
                assert_eq!(widen(&via_lut), oracle_clamp, "lut cols={cols} row={row}");
                assert_eq!(
                    widen(&via_bounded),
                    oracle_clamp,
                    "bounded cols={cols} row={row}"
                );
            }
        }
    }

    #[test]
    fn read_path_transforms_reads_without_touching_registers() {
        let xbar = Crossbar::from_codes(1, 2, &[200, 10]).unwrap();
        let mut acc = vec![0_i64; 2];
        // A bounding-style path: clamp anything >= 128 to 0.
        xbar.accumulate_row(0, |c| if c >= 128 { 0 } else { c }, &mut acc);
        assert_eq!(acc, vec![0, 10]);
        assert_eq!(xbar.read(0, 0), 200, "register content unchanged");
    }

    #[test]
    fn flip_bit_validates_indices() {
        let mut xbar = Crossbar::zeroed(2, 2);
        assert!(xbar.flip_bit(5, 0, 0).is_err());
        assert!(xbar.flip_bit(0, 5, 0).is_err());
        assert!(xbar.flip_bit(0, 0, 9).is_err());
        xbar.flip_bit(1, 1, 7).unwrap();
        assert_eq!(xbar.read(1, 1), 128);
    }

    #[test]
    fn reload_clears_faults() {
        let mut xbar = Crossbar::from_codes(1, 2, &[5, 6]).unwrap();
        xbar.flip_bit(0, 0, 7).unwrap();
        assert_eq!(xbar.read(0, 0), 133);
        xbar.reload(&[5, 6]).unwrap();
        assert_eq!(xbar.read(0, 0), 5);
    }

    #[test]
    fn codes_round_trip() {
        let codes = vec![9, 8, 7, 6];
        let xbar = Crossbar::from_codes(2, 2, &codes).unwrap();
        assert_eq!(xbar.codes(), codes);
        assert_eq!(xbar.codes_slice(), codes.as_slice());
    }

    #[test]
    fn register_view_reflects_cell() {
        let mut xbar = Crossbar::from_codes(1, 2, &[3, 4]).unwrap();
        assert_eq!(xbar.register(0, 1).read(), 4);
        xbar.write(0, 1, 9);
        assert_eq!(xbar.register(0, 1).read(), 9);
    }

    #[test]
    fn row_codes_is_the_row_major_slice() {
        let xbar = Crossbar::from_codes(2, 3, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(xbar.row_codes(0), &[1, 2, 3]);
        assert_eq!(xbar.row_codes(1), &[4, 5, 6]);
    }
}
