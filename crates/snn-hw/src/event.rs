//! Event-driven sparse engine backend with synaptic delays.
//!
//! The dense [`ComputeEngine`] pays for every neuron every cycle
//! regardless of activity. At paper-typical Poisson rates most cycles
//! carry *no* input spike at all, and on a fully-silent cycle the dense
//! neuron phase does nothing observable: no comparator fires, the guard
//! sees an all-zero word, and every lane just leaks one step (or burns
//! one refractory cycle). [`EventEngine`] exploits exactly that:
//!
//! * **Silent-cycle skipping with lazy leak.** Cycles with no active
//!   input row, no matured delayed event, and no neuron near threshold
//!   are not stepped. A lag counter accumulates them; the guard still
//!   observes one all-zero comparator word per skipped cycle (so
//!   guard-state evolution is cycle-for-cycle identical to dense), and
//!   the next processed cycle first flushes the lag through
//!   [`NeuronLanes::advance_silent`] — refractory countdown plus a
//!   `k`-step leak collapsed to one subtraction via a precomputed
//!   cumulative [`LeakTable`]. The collapse is bit-identical to `k`
//!   sequential floored leak steps (`max(v − k·d, 0)` = `k` folds of
//!   `max(v − d, 0)` for `d ≥ 0`), proptest-pinned.
//! * **Shared processed-cycle kernels.** Cycles that *are* processed run
//!   the very same [`ComputeEngine::accumulate_active_rows`] /
//!   [`ComputeEngine::neuron_phase`] code the dense per-step path is
//!   built from, so on delay-free workloads the two backends are
//!   bit-identical by construction — spikes, counts, and guard decisions
//!   (`tests/proptest_backend_equivalence.rs` pins it under `NoGuard`,
//!   `ResetMonitor`, and injected fault maps).
//! * **Synaptic delays.** Per-synapse integer delays (a scenario class
//!   the dense engine cannot express — temporal coding, recurrent
//!   motifs) compile the crossbar's *resolved* read path into per-input
//!   adjacency lists `(col, resolved_weight, delay)` plus a zero-delay
//!   "immediate" weight image. In-flight events live in a ring of
//!   `max_delay + 1` drive planes indexed by `cycle % len`; an event
//!   scheduled at cycle `t` with delay `d ∈ [1, max_delay]` lands in
//!   slot `(t + d) % len`, which can never collide with the slot being
//!   consumed at `t`. Multiple events maturing on the same
//!   `(cycle, neuron)` slot accumulate by plain `i32` addition, so
//!   arrival order cannot change results.
//!
//! Compiled adjacency state is keyed on the resolved read path *and* the
//! engine's mutation epoch ([`ComputeEngine`] bumps it on
//! `crossbar_mut`, `flip_weight_bit`, and `reload_parameters`), so the
//! heal-on-entry contract holds on this backend too: a parameter reload
//! recompiles the adjacency lists from the healed crossbar image instead
//! of serving a stale compilation.

use crate::engine::ComputeEngine;
use crate::engine::{
    BatchResult, MultiMapResult, NeuronFaultOverlay, ReadKernel, ResolvedPath, SpikeGuard,
    WeightReadPath,
};
use crate::error::HwError;
use crate::neuron_lanes::n_words;
use crate::neuron_unit::OpFaults;
use snn_sim::spike::SpikeTrain;

/// Cumulative floored-leak lookup: `total(k) = k · v_leak` as `i64`,
/// precomputed so a lazy-leak flush of `k` silent cycles is one table
/// read and one subtraction per neuron instead of `k` sequential steps.
///
/// The table grows on demand ([`ensure`](Self::ensure)); reads beyond
/// the materialized prefix fall back to the closed-form product, so
/// [`total`](Self::total) is total in both senses.
#[derive(Debug, Clone)]
pub struct LeakTable {
    v_leak: i32,
    /// `cum[k] = k · v_leak`; `cum[0] = 0`.
    cum: Vec<i64>,
}

impl LeakTable {
    /// A table for a per-step leak of `v_leak` code units.
    pub fn new(v_leak: i32) -> Self {
        Self {
            v_leak,
            cum: vec![0],
        }
    }

    /// Materializes entries up to `k` steps.
    pub fn ensure(&mut self, k: u32) {
        while self.cum.len() <= k as usize {
            let last = *self.cum.last().expect("table starts with cum[0]");
            self.cum.push(last + i64::from(self.v_leak));
        }
    }

    /// Total leak over `k` steps (`k · v_leak`), from the table when
    /// materialized, closed-form otherwise.
    pub fn total(&self, k: u32) -> i64 {
        match self.cum.get(k as usize) {
            Some(&t) => t,
            None => i64::from(self.v_leak) * i64::from(k),
        }
    }
}

/// One compiled delayed synapse of an input row: target column, weight
/// after the resolved read-path transform, delay in cycles (`≥ 1`).
type DelayedSynapse = (u32, u8, u16);

/// The event-driven sparse backend (see the module docs). Wraps a dense
/// [`ComputeEngine`] — the wrapped engine remains the state store, the
/// fault-injection surface, and the kernel provider, which is what makes
/// delay-free bit-identity a construction property rather than a
/// re-implementation hazard.
#[derive(Debug, Clone)]
pub struct EventEngine {
    inner: ComputeEngine,
    /// Lazy-leak lookup for silent-gap flushes.
    leak: LeakTable,
    /// Whether silent-cycle skipping is sound for this parameterization:
    /// requires non-negative leak (membranes never drift *up* while
    /// silent), strictly positive thresholds (a rested lane cannot sit at
    /// threshold), and a reset value below every threshold (a lane coming
    /// out of refractory cannot sit at threshold). When false, every
    /// cycle is processed — still bit-identical, just without the sparse
    /// win.
    lazy_ok: bool,
    /// Per-synapse delays, row-major (`row * n_neurons + col`), in
    /// cycles. All-zero by default; [`set_synapse_delay`] writes here.
    ///
    /// [`set_synapse_delay`]: Self::set_synapse_delay
    delays: Vec<u16>,
    /// Largest delay currently configured (ring sizing).
    max_delay: u16,
    /// Resolved weight image with every delayed synapse zeroed: the
    /// drive that applies on the *arrival* cycle itself. Compiled only
    /// when `max_delay > 0` — the delay-free path accumulates through
    /// the wrapped engine's own read cache at zero extra cost.
    immediate: Vec<u8>,
    /// Per-input adjacency lists of delayed synapses (delay ≥ 1,
    /// resolved weight ≠ 0).
    delayed_rows: Vec<Vec<DelayedSynapse>>,
    /// What `immediate`/`delayed_rows` were compiled from: resolved
    /// kernel, transfer table, and the wrapped engine's mutation epoch.
    /// `None` when nothing valid is compiled.
    compiled_key: Option<(ReadKernel, [u8; 256], u64)>,
    /// `(max_delay + 1) × n_neurons` pending-drive planes, slot-major.
    ring: Vec<i32>,
    /// Per-slot count of scheduled events (a slot with zero live events
    /// is skippable without touching its plane).
    ring_live: Vec<u32>,
    /// All-zero comparator words handed to the guard on skipped cycles.
    zero_words: Vec<u64>,
    /// Guard allow-word scratch for skipped cycles (the dense scratch is
    /// busy holding the last processed cycle's decisions).
    allow_scratch: Vec<u64>,
    /// Per-neuron output spike counts of the sample in flight.
    counts: Vec<u32>,
    /// Cycles stepped through the full kernels, across the engine's
    /// lifetime (observability for tests and the sparse bench).
    processed_cycles: u64,
    /// Cycles skipped via lazy leak, across the engine's lifetime.
    skipped_cycles: u64,
}

impl EventEngine {
    /// Wraps a dense engine as an event-driven backend with all synapse
    /// delays zero.
    pub fn new(inner: ComputeEngine) -> Self {
        let hw = inner.hw_params();
        let min_thresh = inner.thresholds().iter().copied().min();
        let lazy_ok = match min_thresh {
            Some(t) => hw.v_leak >= 0 && t > 0 && hw.v_reset < t,
            None => false,
        };
        let cells = inner.n_inputs() * inner.n_neurons();
        Self {
            leak: LeakTable::new(hw.v_leak),
            lazy_ok,
            delays: vec![0; cells],
            max_delay: 0,
            immediate: Vec::new(),
            delayed_rows: Vec::new(),
            compiled_key: None,
            ring: Vec::new(),
            ring_live: Vec::new(),
            zero_words: vec![0; n_words(inner.n_neurons())],
            allow_scratch: vec![0; n_words(inner.n_neurons())],
            counts: vec![0; inner.n_neurons()],
            processed_cycles: 0,
            skipped_cycles: 0,
            inner,
        }
    }

    /// Unwraps back into the dense engine, dropping delay configuration.
    pub fn into_inner(self) -> ComputeEngine {
        self.inner
    }

    /// The wrapped dense engine (state, faults, crossbar).
    pub fn engine(&self) -> &ComputeEngine {
        &self.inner
    }

    /// Mutable access to the wrapped engine — the fault-injection
    /// boundary. Safe against stale compilations: every crossbar-visible
    /// mutation API bumps the engine's mutation epoch, which invalidates
    /// this backend's compiled adjacency lists on the next run.
    pub fn engine_mut(&mut self) -> &mut ComputeEngine {
        &mut self.inner
    }

    /// Largest per-synapse delay currently configured, in cycles.
    pub fn max_delay(&self) -> u16 {
        self.max_delay
    }

    /// Sets the synaptic delay of `(row, col)` in cycles (0 = same-cycle
    /// delivery, the dense-equivalent default).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::IndexOutOfRange`] for bad indices (the backend
    /// is unchanged in that case).
    pub fn set_synapse_delay(&mut self, row: usize, col: usize, delay: u16) -> Result<(), HwError> {
        let (m, n) = (self.inner.n_inputs(), self.inner.n_neurons());
        if row >= m {
            return Err(HwError::IndexOutOfRange {
                what: "row",
                index: row,
                bound: m,
            });
        }
        if col >= n {
            return Err(HwError::IndexOutOfRange {
                what: "col",
                index: col,
                bound: n,
            });
        }
        self.delays[row * n + col] = delay;
        self.max_delay = self.delays.iter().copied().max().unwrap_or(0);
        self.compiled_key = None;
        Ok(())
    }

    /// Cycles stepped through the full kernels since construction.
    pub fn processed_cycles(&self) -> u64 {
        self.processed_cycles
    }

    /// Cycles skipped via lazy leak since construction.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Parameter replacement on this backend: heals the wrapped engine
    /// (clean crossbar image, cleared neuron faults, guard reset). The
    /// heal bumps the mutation epoch, so the compiled adjacency lists are
    /// recompiled from the healed image on the next run — heal-on-entry
    /// holds here exactly as on the dense path.
    pub fn reload_parameters<G: SpikeGuard>(&mut self, guard: &mut G) {
        self.inner.reload_parameters(guard);
    }

    /// Clears membrane/refractory state and drops in-flight delayed
    /// events (between samples). Persisted faults remain, as on the
    /// dense path.
    pub fn reset_state(&mut self) {
        self.inner.reset_state();
        self.ring.fill(0);
        self.ring_live.fill(0);
    }

    /// Presents one encoded sample and returns per-neuron output spike
    /// counts as a borrow of this backend's counter buffer (valid until
    /// the next run). Delay-free configurations are bit-identical to
    /// [`ComputeEngine::run_sample_into`].
    pub fn run_sample_into<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> &[u32] {
        let resolved = ResolvedPath::new(path);
        self.run_sample_resolved(train, &resolved, guard)
    }

    /// Presents one encoded sample and returns per-neuron output spike
    /// counts as an owned vector.
    pub fn run_sample<P: WeightReadPath, G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        path: &P,
        guard: &mut G,
    ) -> Vec<u32> {
        self.run_sample_into(train, path, guard).to_vec()
    }

    /// Runs every sample through [`run_sample_into`](Self::run_sample_into)
    /// with a fresh clone of `guard`, exactly the per-sample semantics
    /// the dense batched pass is specified (and property-tested)
    /// against. Engine state is reset after the batch, as on the dense
    /// path.
    pub fn run_batch_into<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        path: &P,
        guard: &G,
        out: &mut BatchResult,
    ) {
        let resolved = ResolvedPath::new(path);
        out.reset(self.inner.n_neurons(), trains.len());
        for (s, train) in trains.iter().enumerate() {
            let mut g = guard.clone();
            self.run_sample_resolved(train, &resolved, &mut g);
            out.counts_mut(s).copy_from_slice(&self.counts);
        }
        self.reset_state();
    }

    /// Evaluates every (fault map, sample) pair: mirrors the dense
    /// multi-map reference semantics — inject map `m` over the current
    /// fault state, run each sample with a fresh guard clone, restore the
    /// baseline fault state, repeat — with this backend's sample runner.
    pub fn run_batch_multi_map<P: WeightReadPath, G: SpikeGuard + Clone>(
        &mut self,
        trains: &[SpikeTrain],
        maps: &[NeuronFaultOverlay],
        path: &P,
        guard: &G,
        out: &mut MultiMapResult,
    ) {
        let resolved = ResolvedPath::new(path);
        out.reset(self.inner.n_neurons(), trains.len(), maps.len());
        let baseline: Vec<OpFaults> = self.inner.neurons().iter().map(|u| u.faults).collect();
        for (m, map) in maps.iter().enumerate() {
            {
                let units = self.inner.neurons_mut();
                for &(j, op) in map {
                    units[j as usize].faults.set(op);
                }
            }
            for (s, train) in trains.iter().enumerate() {
                let mut g = guard.clone();
                self.run_sample_resolved(train, &resolved, &mut g);
                out.counts_mut(m, s).copy_from_slice(&self.counts);
            }
            let units = self.inner.neurons_mut();
            for (u, &f) in units.iter_mut().zip(&baseline) {
                u.faults = f;
            }
        }
        self.reset_state();
    }

    /// The sample loop (see the module docs for the cycle shape).
    fn run_sample_resolved<G: SpikeGuard>(
        &mut self,
        train: &SpikeTrain,
        resolved: &ResolvedPath,
        guard: &mut G,
    ) -> &[u32] {
        let n = self.inner.n_neurons();
        self.inner.reset_state();
        self.counts.clear();
        self.counts.resize(n, 0);
        let delayed = self.max_delay > 0;
        let len = self.max_delay as usize + 1;
        if delayed {
            self.ensure_compiled(resolved);
            self.ring.clear();
            self.ring.resize(len * n, 0);
            self.ring_live.clear();
            self.ring_live.resize(len, 0);
        }
        // Skip-safety is re-established after every processed cycle: if
        // no comparator fired, every lane ended below threshold (the
        // fused kernel holds refractory lanes at v_reset < threshold
        // under `lazy_ok`); if one did, `hot` stays set until a
        // processed cycle ends with every lane strictly below threshold
        // again — reset-faulty burst neurons therefore never get their
        // comparator cycles skipped.
        let mut hot = false;
        let mut lag: u32 = 0;
        for t in 0..train.n_steps() {
            let rows = train.step(t);
            let slot = t % len;
            let slot_live = delayed && self.ring_live[slot] > 0;
            if self.lazy_ok && !hot && !slot_live && rows.is_empty() {
                // Provably-silent cycle: defer state advance, but keep
                // the guard's observed comparator stream cycle-exact.
                lag += 1;
                self.skipped_cycles += 1;
                guard.observe_cycle(&self.zero_words, &mut self.allow_scratch, n);
                continue;
            }
            if lag > 0 {
                self.leak.ensure(lag);
                self.inner.advance_lanes_silent(lag, &self.leak);
                lag = 0;
            }
            if delayed {
                self.inner.accumulate_image_rows(&self.immediate, rows);
                for &row in rows {
                    for &(col, w, d) in &self.delayed_rows[row as usize] {
                        let target = (t + d as usize) % len;
                        self.ring[target * n + col as usize] += i32::from(w);
                        self.ring_live[target] += 1;
                    }
                }
                if slot_live {
                    let plane = &self.ring[slot * n..(slot + 1) * n];
                    self.inner.acc_add(plane);
                    self.ring[slot * n..(slot + 1) * n].fill(0);
                    self.ring_live[slot] = 0;
                }
            } else {
                self.inner.accumulate_active_rows(rows, resolved);
            }
            let cmp_any = self.inner.neuron_phase(guard);
            for &j in self.inner.last_fired() {
                self.counts[j as usize] += 1;
            }
            self.processed_cycles += 1;
            hot = cmp_any && self.inner.lanes_any_at_or_above();
        }
        if lag > 0 {
            self.leak.ensure(lag);
            self.inner.advance_lanes_silent(lag, &self.leak);
        }
        &self.counts
    }

    /// Recompiles the immediate image and delayed adjacency lists when
    /// the resolved read path or the wrapped engine's mutation epoch
    /// moved since the last compilation.
    fn ensure_compiled(&mut self, resolved: &ResolvedPath) {
        let key = (resolved.kernel, resolved.table, self.inner.mutation_epoch());
        if self.compiled_key.as_ref() == Some(&key) {
            return;
        }
        let (m, n) = (self.inner.n_inputs(), self.inner.n_neurons());
        self.immediate.clear();
        self.immediate.resize(m * n, 0);
        for r in &mut self.delayed_rows {
            r.clear();
        }
        self.delayed_rows.resize_with(m, Vec::new);
        let codes = self.inner.crossbar().codes_slice();
        for row in 0..m {
            for col in 0..n {
                let idx = row * n + col;
                let w = resolve_code(resolved, codes[idx]);
                let d = self.delays[idx];
                if d == 0 {
                    self.immediate[idx] = w;
                } else if w != 0 {
                    self.delayed_rows[row].push((col as u32, w, d));
                }
            }
        }
        self.compiled_key = Some(key);
    }
}

/// One register code through the resolved read path — the same per-code
/// function the dense kernels apply, reused at compile time.
fn resolve_code(path: &ResolvedPath, code: u8) -> u8 {
    match path.kernel {
        ReadKernel::Direct => code,
        ReadKernel::Bounded { threshold, default } => {
            if code > threshold {
                default
            } else {
                code
            }
        }
        ReadKernel::Table => path.table[code as usize],
    }
}
