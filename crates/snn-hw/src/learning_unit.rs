//! On-engine STDP learning unit (integer arithmetic).
//!
//! The accelerator of the paper's Fig. 2 contains a *Learning Unit*
//! alongside the compute engine. The SoftSNN experiments run inference
//! only (training happens offline in `snn-sim`), but the unit is modeled
//! here for completeness and for the on-chip-learning extension: a
//! shift-based, weight-dependent post-spike STDP rule operating directly
//! on 8-bit weight codes, cheap enough for per-synapse hardware.

use crate::crossbar::Crossbar;

/// Integer STDP configuration for the on-engine learning unit.
///
/// Updates use power-of-two scaling (shifts) as real neuromorphic digital
/// designs (e.g. ODIN) do:
/// on a post-synaptic spike, recently active inputs potentiate by
/// `(w_max − w) >> pot_shift` and stale inputs depress by
/// `w >> dep_shift`.
///
/// # Examples
///
/// ```
/// use snn_hw::learning_unit::{LearningUnit, LearningConfig};
///
/// let lu = LearningUnit::new(LearningConfig::default(), 4);
/// assert_eq!(lu.config().pot_shift, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearningConfig {
    /// Potentiation shift (larger = weaker updates).
    pub pot_shift: u8,
    /// Depression shift.
    pub dep_shift: u8,
    /// Maximum representable weight code (soft bound).
    pub w_max_code: u8,
    /// How many timesteps an input trace stays "recent" after a spike.
    pub trace_window: u8,
}

impl Default for LearningConfig {
    fn default() -> Self {
        Self {
            pot_shift: 4,
            dep_shift: 6,
            w_max_code: 128,
            trace_window: 8,
        }
    }
}

/// The on-engine learning unit: integer traces + shift-based STDP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearningUnit {
    config: LearningConfig,
    /// Per-input countdown since the last pre-spike (0 = stale).
    trace_counters: Vec<u8>,
}

impl LearningUnit {
    /// Creates a unit for `n_inputs` input channels.
    pub fn new(config: LearningConfig, n_inputs: usize) -> Self {
        Self {
            config,
            trace_counters: vec![0; n_inputs],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LearningConfig {
        &self.config
    }

    /// Advances traces one timestep and registers this step's pre-spikes.
    pub fn observe_step(&mut self, active_inputs: &[u32]) {
        for t in &mut self.trace_counters {
            *t = t.saturating_sub(1);
        }
        for &i in active_inputs {
            self.trace_counters[i as usize] = self.config.trace_window;
        }
    }

    /// Whether input `i`'s trace is currently active ("recent").
    pub fn trace_active(&self, i: usize) -> bool {
        self.trace_counters[i] > 0
    }

    /// Applies the post-spike update for neuron `col` directly on the
    /// crossbar registers.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or the crossbar row count differs
    /// from the unit's input count.
    pub fn on_post_spike(&self, crossbar: &mut Crossbar, col: usize) {
        assert_eq!(crossbar.rows(), self.trace_counters.len());
        let cfg = self.config;
        for row in 0..crossbar.rows() {
            let w = crossbar.read(row, col);
            let new = if self.trace_active(row) {
                let head = cfg.w_max_code.saturating_sub(w);
                w.saturating_add((head >> cfg.pot_shift).max(1))
                    .min(cfg.w_max_code)
            } else {
                w.saturating_sub((w >> cfg.dep_shift).max(u8::from(w > 0)))
            };
            crossbar.write(row, col, new);
        }
    }

    /// Clears all traces (between samples).
    pub fn reset(&mut self) {
        self.trace_counters.iter_mut().for_each(|t| *t = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> LearningUnit {
        LearningUnit::new(LearningConfig::default(), 4)
    }

    #[test]
    fn traces_expire_after_window() {
        let mut lu = unit();
        lu.observe_step(&[1]);
        assert!(lu.trace_active(1));
        for _ in 0..LearningConfig::default().trace_window {
            lu.observe_step(&[]);
        }
        assert!(!lu.trace_active(1));
    }

    #[test]
    fn post_spike_potentiates_recent_and_depresses_stale() {
        let mut lu = unit();
        let mut xbar = Crossbar::from_codes(4, 1, &[60, 60, 60, 60]).unwrap();
        lu.observe_step(&[0, 1]);
        lu.on_post_spike(&mut xbar, 0);
        assert!(xbar.read(0, 0) > 60, "recent input potentiated");
        assert!(xbar.read(2, 0) < 60, "stale input depressed");
    }

    #[test]
    fn weights_respect_code_bounds() {
        let mut lu = unit();
        let mut xbar = Crossbar::from_codes(4, 1, &[127, 127, 0, 0]).unwrap();
        lu.observe_step(&[0, 1]);
        for _ in 0..50 {
            lu.on_post_spike(&mut xbar, 0);
        }
        for row in 0..4 {
            assert!(xbar.read(row, 0) <= LearningConfig::default().w_max_code);
        }
        assert_eq!(xbar.read(2, 0), 0, "stale zero weight stays zero");
    }

    #[test]
    fn reset_clears_traces() {
        let mut lu = unit();
        lu.observe_step(&[0, 1, 2, 3]);
        lu.reset();
        assert!((0..4).all(|i| !lu.trace_active(i)));
    }
}
