//! Error type for the hardware model.

use std::error::Error;
use std::fmt;

/// Errors returned by `snn-hw` public functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A deployed network does not fit or is internally inconsistent.
    InvalidNetwork {
        /// Description of the inconsistency.
        detail: String,
    },
    /// An index (row, column, neuron, bit) was out of range.
    IndexOutOfRange {
        /// Which index kind was out of range.
        what: &'static str,
        /// The offending index value.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::InvalidNetwork { detail } => write!(f, "invalid network: {detail}"),
            HwError::IndexOutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (bound {bound})")
            }
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = HwError::IndexOutOfRange {
            what: "row",
            index: 9,
            bound: 4,
        };
        assert!(e.to_string().contains("row index 9"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<HwError>();
    }
}
