//! Lane-explicit accumulate kernels and runtime engine tuning.
//!
//! The widening `u8 → i32` accumulate over active crossbar rows is the
//! innermost loop of every engine datapath — the single-sample step, the
//! batched sample pass, and the multi-map trial pass. This module is the
//! one place that loop exists: all three call sites in
//! [`crate::engine::ComputeEngine`] and the per-row kernels of
//! [`crate::crossbar::Crossbar`] route through it, so the kernels cannot
//! drift between paths.
//!
//! # Lane-explicit, not `std::simd`
//!
//! The workspace carries no registry dependencies and stays on stable
//! Rust, so SIMD width is made explicit *structurally* instead of through
//! intrinsics: [`AccumKernel::Lanes8`] processes columns in fixed
//! [`LANE_WIDTH`]-wide chunks with a scalar remainder tail, accumulating
//! into a local `[i32; LANE_WIDTH]` block that LLVM autovectorizes, and
//! [`AccumKernel::Packed64`] packs two `i32` column accumulators into one
//! `u64` so a single integer add advances two lanes.
//!
//! # Why every choice is bit-identical
//!
//! All summands are exact widenings of `u8` codes (non-negative, ≤ 255)
//! and a full crossbar column sums to at most `rows × 255`, so `i32`
//! accumulation never overflows for any crossbar under ~8.4M rows —
//! addition here is associative and commutative in the mathematical
//! sense, not merely approximately. Any row-block size, lane chunking,
//! or `u64` packing therefore produces bit-identical accumulators, which
//! is what lets [`EngineTuning::autotune`] pick layouts per host without
//! touching the engine's determinism obligations (the equivalence
//! proptests and pinned-bit suites run under randomized tunings to prove
//! it). The `u64` packing is exact because both lanes stay non-negative
//! and below `2^31`, so no carry ever crosses bit 32.

use crate::engine::{MAX_BATCH, MAX_MAPS};
use std::time::Instant;

/// Columns per explicit lane chunk of [`AccumKernel::Lanes8`]: eight
/// `i32` lanes, i.e. one AVX2 register or two 128-bit SSE/NEON registers.
pub const LANE_WIDTH: usize = 8;

/// Which inner-loop formulation the accumulate uses. All variants are
/// bit-identical (see the module docs); they differ only in how they
/// present the work to the compiler's vectorizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumKernel {
    /// One widening add per column per row — the reference formulation
    /// the equivalence tests pin everything else against.
    Scalar,
    /// Fixed [`LANE_WIDTH`]-column chunks accumulated into a local lane
    /// block, scalar remainder tail.
    Lanes8,
    /// Two `i32` column accumulators packed into one `u64` add (exact:
    /// lanes are non-negative and `< 2^31`, so no carry crosses bit 32).
    Packed64,
}

impl AccumKernel {
    /// Every kernel variant, in autotune candidate order.
    pub const ALL: [Self; 3] = [Self::Scalar, Self::Lanes8, Self::Packed64];

    /// Sums `K` rows column-wise into `acc`, storing (`STORE = true`) or
    /// accumulating (`STORE = false`) — the one generic body behind both
    /// halves of the historical quad-blocked accumulate.
    #[inline]
    fn pass<const K: usize, const STORE: bool>(self, rows: [&[u8]; K], acc: &mut [i32]) {
        match self {
            Self::Scalar => pass_scalar::<K, STORE>(rows, acc),
            Self::Lanes8 => pass_lanes8::<K, STORE>(rows, acc),
            Self::Packed64 => pass_packed64::<K, STORE>(rows, acc),
        }
    }
}

/// Active rows summed per accumulator pass by the blocked accumulate:
/// each `acc` element is touched once per block instead of once per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBlock {
    /// Two rows per pass.
    R2,
    /// Four rows per pass (the historical hand-picked quad).
    R4,
    /// Eight rows per pass.
    R8,
}

impl RowBlock {
    /// Every block size, in autotune candidate order.
    pub const ALL: [Self; 3] = [Self::R2, Self::R4, Self::R8];

    /// Rows per accumulator pass.
    pub fn rows(self) -> usize {
        match self {
            Self::R2 => 2,
            Self::R4 => 4,
            Self::R8 => 8,
        }
    }
}

/// Re-slices every row to the accumulator width so the inner loops index
/// without per-element bounds checks. Panics if a row is shorter than
/// `acc` — the callers' documented out-of-range contract.
#[inline(always)]
fn hoist<const K: usize>(rows: [&[u8]; K], n: usize) -> [&[u8]; K] {
    std::array::from_fn(|k| &rows[k][..n])
}

#[inline]
fn pass_scalar<const K: usize, const STORE: bool>(rows: [&[u8]; K], acc: &mut [i32]) {
    let rows = hoist(rows, acc.len());
    for (i, a) in acc.iter_mut().enumerate() {
        let mut s = 0_i32;
        for r in &rows {
            s += r[i] as i32;
        }
        if STORE {
            *a = s;
        } else {
            *a += s;
        }
    }
}

#[inline]
fn pass_lanes8<const K: usize, const STORE: bool>(rows: [&[u8]; K], acc: &mut [i32]) {
    let rows = hoist(rows, acc.len());
    let mut chunks = acc.chunks_exact_mut(LANE_WIDTH);
    let mut i = 0;
    for chunk in chunks.by_ref() {
        // A local lane block keeps the sums in registers across the K
        // rows; LLVM lowers the fixed-width loops to vector adds.
        let mut lane = [0_i32; LANE_WIDTH];
        for r in &rows {
            for (slot, &c) in lane.iter_mut().zip(&r[i..i + LANE_WIDTH]) {
                *slot += c as i32;
            }
        }
        for (a, &v) in chunk.iter_mut().zip(&lane) {
            if STORE {
                *a = v;
            } else {
                *a += v;
            }
        }
        i += LANE_WIDTH;
    }
    for (l, a) in chunks.into_remainder().iter_mut().enumerate() {
        let mut s = 0_i32;
        for r in &rows {
            s += r[i + l] as i32;
        }
        if STORE {
            *a = s;
        } else {
            *a += s;
        }
    }
}

#[inline]
fn pass_packed64<const K: usize, const STORE: bool>(rows: [&[u8]; K], acc: &mut [i32]) {
    let rows = hoist(rows, acc.len());
    let mut pairs = acc.chunks_exact_mut(2);
    let mut i = 0;
    for pair in pairs.by_ref() {
        let mut packed: u64 = if STORE {
            0
        } else {
            (pair[0] as u32 as u64) | ((pair[1] as u32 as u64) << 32)
        };
        for r in &rows {
            packed += (r[i] as u64) | ((r[i + 1] as u64) << 32);
        }
        pair[0] = packed as u32 as i32;
        pair[1] = (packed >> 32) as u32 as i32;
        i += 2;
    }
    if let [a] = pairs.into_remainder() {
        let mut s = if STORE { 0 } else { *a };
        for r in &rows {
            s += r[i] as i32;
        }
        *a = s;
    }
}

/// One row of a flat row-major code image. Panics if the row lies past
/// the end of `src` — the engine's out-of-range active-row contract.
#[inline(always)]
fn image_row(src: &[u8], cols: usize, row: u32) -> &[u8] {
    let base = row as usize * cols;
    &src[base..base + cols]
}

/// Widening-adds the given rows of a row-major code image into the
/// per-column accumulators, one row per pass (the unblocked form —
/// remainder handling and the historical `accumulate_cached_rows`).
#[inline]
pub fn accumulate_rows(
    kernel: AccumKernel,
    src: &[u8],
    cols: usize,
    active_rows: &[u32],
    acc: &mut [i32],
) {
    for &row in active_rows {
        kernel.pass::<1, false>([image_row(src, cols, row)], acc);
    }
}

/// Row-blocked accumulate over a flat row-major code image, writing the
/// drives of one cycle into `acc` (previous contents are overwritten, so
/// callers skip the zero-fill pass): `block.rows()` rows are summed per
/// accumulator pass — and the first block *stores* instead of
/// accumulating — so each `acc` element is touched once per block
/// instead of once per row. Bit-identical to the zero-then-add
/// row-at-a-time formulation for every `(kernel, block)` choice (see the
/// module docs); the equivalence proptests pin that.
#[inline]
pub fn write_rows_blocked(
    kernel: AccumKernel,
    block: RowBlock,
    src: &[u8],
    cols: usize,
    active_rows: &[u32],
    acc: &mut [i32],
) {
    match block {
        RowBlock::R2 => write_blocked::<2>(kernel, src, cols, active_rows, acc),
        RowBlock::R4 => write_blocked::<4>(kernel, src, cols, active_rows, acc),
        RowBlock::R8 => write_blocked::<8>(kernel, src, cols, active_rows, acc),
    }
}

fn write_blocked<const K: usize>(
    kernel: AccumKernel,
    src: &[u8],
    cols: usize,
    active_rows: &[u32],
    acc: &mut [i32],
) {
    let mut blocks = active_rows.chunks_exact(K);
    let mut first = true;
    for block in blocks.by_ref() {
        let rows: [&[u8]; K] = std::array::from_fn(|k| image_row(src, cols, block[k]));
        if first {
            kernel.pass::<K, true>(rows, acc);
            first = false;
        } else {
            kernel.pass::<K, false>(rows, acc);
        }
    }
    if first {
        acc.fill(0);
    }
    accumulate_rows(kernel, src, cols, blocks.remainder(), acc);
}

/// Widening-adds one code row into `acc` through the identity read path.
/// Excess `acc` or `codes` length beyond the shorter of the two is
/// ignored — callers assert exact widths.
#[inline]
pub fn accumulate_row_direct(kernel: AccumKernel, codes: &[u8], acc: &mut [i32]) {
    accumulate_row_mapped(kernel, codes, acc, |c| c);
}

/// Widening-adds one code row into `acc` through a precomputed 256-entry
/// read-path table (one indexed load per element).
#[inline]
pub fn accumulate_row_lut(kernel: AccumKernel, codes: &[u8], lut: &[u8; 256], acc: &mut [i32]) {
    accumulate_row_mapped(kernel, codes, acc, |c| lut[c as usize]);
}

/// Widening-adds one code row into `acc` through a comparator+mux read
/// path (`code > threshold → default`) — a branchless compare/select.
#[inline]
pub fn accumulate_row_bounded(
    kernel: AccumKernel,
    codes: &[u8],
    threshold: u8,
    default: u8,
    acc: &mut [i32],
) {
    accumulate_row_mapped(
        kernel,
        codes,
        acc,
        |c| if c > threshold { default } else { c },
    );
}

/// The one transformed single-row body behind the crossbar's per-row
/// kernels: slice-hoisted bounds, then the chosen lane formulation with
/// `f` applied per code before widening.
#[inline(always)]
fn accumulate_row_mapped<F: Fn(u8) -> u8>(
    kernel: AccumKernel,
    codes: &[u8],
    acc: &mut [i32],
    f: F,
) {
    let n = acc.len().min(codes.len());
    let (acc, codes) = (&mut acc[..n], &codes[..n]);
    match kernel {
        AccumKernel::Scalar => {
            for (a, &c) in acc.iter_mut().zip(codes) {
                *a += f(c) as i32;
            }
        }
        AccumKernel::Lanes8 => {
            let mut chunks = acc.chunks_exact_mut(LANE_WIDTH);
            let mut i = 0;
            for chunk in chunks.by_ref() {
                for (a, &c) in chunk.iter_mut().zip(&codes[i..i + LANE_WIDTH]) {
                    *a += f(c) as i32;
                }
                i += LANE_WIDTH;
            }
            for (a, &c) in chunks.into_remainder().iter_mut().zip(&codes[i..]) {
                *a += f(c) as i32;
            }
        }
        AccumKernel::Packed64 => {
            let mut pairs = acc.chunks_exact_mut(2);
            let mut i = 0;
            for pair in pairs.by_ref() {
                let mut packed = (pair[0] as u32 as u64) | ((pair[1] as u32 as u64) << 32);
                packed += (f(codes[i]) as u64) | ((f(codes[i + 1]) as u64) << 32);
                pair[0] = packed as u32 as i32;
                pair[1] = (packed >> 32) as u32 as i32;
                i += 2;
            }
            if let [a] = pairs.into_remainder() {
                *a += f(codes[i]) as i32;
            }
        }
    }
}

/// Per-engine accumulate tuning: which kernel formulation and row-block
/// size the drive phases use, and how many samples/maps each batched
/// chunk interleaves. Every choice is bit-identical by construction (see
/// the module docs) — tuning trades only time, never results — so
/// engines autotune at construction by default and campaign clones
/// simply inherit the chosen values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTuning {
    /// Inner-loop formulation for every accumulate call site.
    pub kernel: AccumKernel,
    /// Rows summed per accumulator pass in the blocked drive phases.
    pub row_block: RowBlock,
    /// Samples interleaved per batched-pass chunk (clamped to
    /// `1..=MAX_BATCH` at use).
    pub batch_chunk: usize,
    /// Maps interleaved per multi-map chunk (clamped to `1..=MAX_MAPS`
    /// at use).
    pub map_chunk: usize,
}

impl EngineTuning {
    /// The fixed historical shape — the hand-picked constants every
    /// pre-tuning engine used. The escape hatch for tests and pins that
    /// want a deterministic construction-time choice (results are
    /// identical either way; only timings differ).
    pub fn fixed() -> Self {
        Self {
            kernel: AccumKernel::Lanes8,
            row_block: RowBlock::R4,
            batch_chunk: MAX_BATCH,
            map_chunk: MAX_MAPS,
        }
    }

    /// Measures the kernel/row-block candidates and the effective chunk
    /// widths for `MAX_BATCH`/`MAX_MAPS`-sized lane planes on a small
    /// synthetic workload shaped like a `rows × cols` engine, and
    /// returns the winners. The workload is capped so construction
    /// stays cheap even in debug builds (property tests construct
    /// hundreds of engines); because every candidate is bit-identical,
    /// a noisy pick costs time only, never correctness.
    pub fn autotune(rows: usize, cols: usize) -> Self {
        let cols = cols.clamp(1, 256);
        let rows = rows.clamp(1, 32);
        // Synthetic row-major code image + a cycling active-row set long
        // enough to exercise full blocks of every candidate size.
        let src: Vec<u8> = (0..rows * cols)
            .map(|i| ((i * 31 + 17) & 0xff) as u8)
            .collect();
        let active: Vec<u32> = (0..16).map(|i| ((i * 7) % rows) as u32).collect();
        let mut acc = vec![0_i32; cols];
        let mut best = Self::fixed();
        let mut best_ns = u128::MAX;
        let mut sink = 0_i32;
        for kernel in AccumKernel::ALL {
            for row_block in RowBlock::ALL {
                // Best of a few short reps: robust to scheduler noise
                // without making construction slow.
                let mut cand_ns = u128::MAX;
                for _rep in 0..2 {
                    let t0 = Instant::now();
                    for _ in 0..2 {
                        write_rows_blocked(kernel, row_block, &src, cols, &active, &mut acc);
                        sink ^= acc[0];
                    }
                    cand_ns = cand_ns.min(t0.elapsed().as_nanos());
                }
                if cand_ns < best_ns {
                    best_ns = cand_ns;
                    best.kernel = kernel;
                    best.row_block = row_block;
                }
            }
        }
        std::hint::black_box(sink);
        best.batch_chunk = pick_chunk_width(cols, MAX_BATCH);
        best.map_chunk = pick_chunk_width(cols, MAX_MAPS);
        best
    }

    /// `batch_chunk` clamped to the engine's supported range.
    pub fn clamped_batch_chunk(&self) -> usize {
        self.batch_chunk.clamp(1, MAX_BATCH)
    }

    /// `map_chunk` clamped to the engine's supported range.
    pub fn clamped_map_chunk(&self) -> usize {
        self.map_chunk.clamp(1, MAX_MAPS)
    }
}

/// Measures a synthetic `width × n` lane-plane walk (the shape of the
/// batched drive/state planes) per candidate width and returns the
/// cheapest per-element winner — larger widths amortize per-chunk setup,
/// smaller widths keep the resident planes lean; which wins depends on
/// the host cache hierarchy, hence measuring instead of guessing.
fn pick_chunk_width(n: usize, cap: usize) -> usize {
    let n = n.clamp(1, 512);
    let drive: Vec<i32> = (0..n).map(|i| (i % 7) as i32).collect();
    let mut best = cap;
    let mut best_per = f64::INFINITY;
    let mut sink = 0_i32;
    for &width in &[4_usize, 8, 16] {
        let width = width.min(cap);
        let mut plane = vec![1_i32; width * n];
        let t0 = Instant::now();
        for _cycle in 0..4 {
            for s in 0..width {
                let lane = &mut plane[s * n..(s + 1) * n];
                for (v, &d) in lane.iter_mut().zip(&drive) {
                    *v = v.wrapping_add(d);
                }
            }
        }
        let per = t0.elapsed().as_nanos() as f64 / (4 * width * n) as f64;
        sink ^= plane[0];
        if per < best_per {
            best_per = per;
            best = width;
        }
    }
    std::hint::black_box(sink);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar zero-then-add row-at-a-time oracle every blocked
    /// formulation must match bit for bit.
    fn oracle(src: &[u8], cols: usize, active_rows: &[u32], acc: &mut [i32]) {
        acc.fill(0);
        for &row in active_rows {
            let base = row as usize * cols;
            for (a, &c) in acc.iter_mut().zip(&src[base..base + cols]) {
                *a += c as i32;
            }
        }
    }

    fn image(rows: usize, cols: usize, seed: u8) -> Vec<u8> {
        (0..rows * cols)
            .map(|i| ((i * 37 + seed as usize * 101 + 13) & 0xff) as u8)
            .collect()
    }

    #[test]
    fn all_kernel_block_pairs_match_oracle_on_ragged_shapes() {
        // Every cols ≡ 0..LANE_WIDTH-1 (mod LANE_WIDTH) residue, odd and
        // even (Packed64's pair remainder), block-straddling row counts.
        for cols in 1..=2 * LANE_WIDTH + 1 {
            for n_active in [0_usize, 1, 2, 3, 4, 5, 7, 8, 9, 17] {
                let rows = 12;
                let src = image(rows, cols, cols as u8);
                let active: Vec<u32> = (0..n_active).map(|i| ((i * 5) % rows) as u32).collect();
                let mut want = vec![0_i32; cols];
                oracle(&src, cols, &active, &mut want);
                for kernel in AccumKernel::ALL {
                    for block in RowBlock::ALL {
                        let mut got = vec![-7_i32; cols];
                        write_rows_blocked(kernel, block, &src, cols, &active, &mut got);
                        assert_eq!(
                            got, want,
                            "write_rows_blocked {kernel:?}/{block:?} cols={cols} active={n_active}"
                        );
                    }
                    let mut got = vec![0_i32; cols];
                    accumulate_rows(kernel, &src, cols, &active, &mut got);
                    assert_eq!(got, want, "accumulate_rows {kernel:?} cols={cols}");
                }
            }
        }
    }

    #[test]
    fn accumulate_preserves_prior_contents_write_overwrites() {
        let cols = 11;
        let src = image(4, cols, 3);
        let active = [0_u32, 2, 3];
        let mut want = vec![0_i32; cols];
        oracle(&src, cols, &active, &mut want);
        for kernel in AccumKernel::ALL {
            let mut acc: Vec<i32> = (0..cols as i32).collect();
            accumulate_rows(kernel, &src, cols, &active, &mut acc);
            let plus_base: Vec<i32> = want
                .iter()
                .zip(0..cols as i32)
                .map(|(w, b)| w + b)
                .collect();
            assert_eq!(acc, plus_base, "{kernel:?} accumulate keeps prior");
            let mut acc: Vec<i32> = (0..cols as i32).collect();
            write_rows_blocked(kernel, RowBlock::R4, &src, cols, &active, &mut acc);
            assert_eq!(acc, want, "{kernel:?} write overwrites prior");
        }
    }

    #[test]
    fn mapped_row_kernels_match_scalar_on_ragged_widths() {
        let mut lut = [0_u8; 256];
        for (i, slot) in lut.iter_mut().enumerate() {
            *slot = (i as u8).wrapping_mul(3) ^ 0x5a;
        }
        for cols in 1..=2 * LANE_WIDTH + 1 {
            let codes = image(1, cols, 9);
            for kernel in AccumKernel::ALL {
                let mut want = vec![5_i32; cols];
                let mut got_direct = vec![5_i32; cols];
                let mut got_lut = vec![5_i32; cols];
                let mut got_bounded = vec![5_i32; cols];
                for (a, &c) in want.iter_mut().zip(&codes) {
                    *a += c as i32;
                }
                accumulate_row_direct(kernel, &codes, &mut got_direct);
                assert_eq!(got_direct, want, "direct {kernel:?} cols={cols}");
                let mut want_lut = vec![5_i32; cols];
                for (a, &c) in want_lut.iter_mut().zip(&codes) {
                    *a += lut[c as usize] as i32;
                }
                accumulate_row_lut(kernel, &codes, &lut, &mut got_lut);
                assert_eq!(got_lut, want_lut, "lut {kernel:?} cols={cols}");
                let (threshold, default) = (96_u8, 6_u8);
                let mut want_bounded = vec![5_i32; cols];
                for (a, &c) in want_bounded.iter_mut().zip(&codes) {
                    *a += if c > threshold { default } else { c } as i32;
                }
                accumulate_row_bounded(kernel, &codes, threshold, default, &mut got_bounded);
                assert_eq!(got_bounded, want_bounded, "bounded {kernel:?} cols={cols}");
            }
        }
    }

    #[test]
    fn autotune_returns_in_range_tuning() {
        for (rows, cols) in [(1, 1), (784, 400), (24, 10), (256, 256)] {
            let t = EngineTuning::autotune(rows, cols);
            assert!((1..=MAX_BATCH).contains(&t.clamped_batch_chunk()));
            assert!((1..=MAX_MAPS).contains(&t.clamped_map_chunk()));
        }
    }

    #[test]
    fn clamps_bound_out_of_range_chunks() {
        let t = EngineTuning {
            batch_chunk: 0,
            map_chunk: 900,
            ..EngineTuning::fixed()
        };
        assert_eq!(t.clamped_batch_chunk(), 1);
        assert_eq!(t.clamped_map_chunk(), MAX_MAPS);
    }
}
