//! Offline, API-compatible subset of the `criterion` bench harness.
//!
//! Implements the surface this workspace's benches use — benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple median-of-samples timer
//! instead of criterion's full statistical machinery.
//!
//! Modes:
//!
//! * `cargo bench` — measures and prints `time: <ns>/iter` per benchmark.
//! * `--test` (as passed by `cargo test --benches`) — runs each benchmark
//!   body once, without timing, so benches act as smoke tests.
//! * `BENCH_JSON_OUT=<path>` — additionally writes all measurements (plus
//!   any derived metrics registered via [`Criterion::add_metric`]) as a
//!   JSON object, used by CI to track the performance trajectory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
struct Measurement {
    group: String,
    bench: String,
    ns_per_iter: f64,
    iters: u64,
}

/// The bench harness entry point (one per bench binary).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    sample_size: usize,
    results: Vec<Measurement>,
    metrics: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filters: Vec::new(),
            sample_size: 10,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies `--test` / `--bench` / filter command-line arguments the way
    /// cargo passes them to a `harness = false` bench target.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                "--sample-size" => {
                    if let Some(v) = args.next() {
                        self.sample_size = v.parse().unwrap_or(self.sample_size);
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown flags (e.g. --color) are ignored; flags with a
                    // value consume it when present.
                    if args.peek().map(|n| !n.starts_with('-')).unwrap_or(false) {
                        args.next();
                    }
                }
                s => self.filters.push(s.to_owned()),
            }
        }
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one("", &name, f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f.as_str()))
    }

    fn run_one<F>(&mut self, group: &str, bench: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = if group.is_empty() {
            bench.to_owned()
        } else {
            format!("{group}/{bench}")
        };
        if !self.matches_filter(&full) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {full} ... ok");
        } else {
            println!(
                "{full:<50} time: {} ({} iters)",
                format_ns(bencher.ns_per_iter),
                bencher.iters
            );
        }
        self.results.push(Measurement {
            group: group.to_owned(),
            bench: bench.to_owned(),
            ns_per_iter: bencher.ns_per_iter,
            iters: bencher.iters,
        });
    }

    /// The measured ns/iter of a finished benchmark (`group` empty for
    /// ungrouped benches) — lets a trailing pseudo-group derive summary
    /// metrics from earlier measurements.
    pub fn ns_per_iter(&self, group: &str, bench: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|m| m.group == group && m.bench == bench)
            .map(|m| m.ns_per_iter)
    }

    /// Records a named derived metric (e.g. a speedup or overhead ratio)
    /// to be emitted alongside the raw measurements in the JSON output.
    pub fn add_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Writes collected measurements (and derived metrics, if any) as
    /// JSON to `path`: `{"results": [...], "metrics": {...}}`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"bench\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{}\n",
                m.group,
                m.bench,
                m.ns_per_iter,
                m.iters,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    \"{name}\": {value:.4}{}\n",
                if i + 1 == self.metrics.len() { "" } else { "," }
            ));
        }
        out.push_str("  }\n}\n");
        std::fs::write(path, out)
    }

    /// Called by [`criterion_main!`] after all groups ran: honors
    /// `BENCH_JSON_OUT`.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON_OUT") {
            if !path.is_empty() {
                match self.write_json(&path) {
                    Ok(()) => {
                        eprintln!("[criterion] wrote {} results to {path}", self.results.len())
                    }
                    Err(e) => eprintln!("[criterion] failed to write {path}: {e}"),
                }
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.dispatch(name.to_string(), f);
        self
    }

    /// Benchmarks `f` with an input value (criterion's parameterized form).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.dispatch(id.full_name(), |b| f(b, input));
        self
    }

    fn dispatch<F>(&mut self, bench_name: String, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n.min(saved);
        }
        let group = self.name.clone();
        self.criterion.run_one(&group, &bench_name, f);
        self.criterion.sample_size = saved;
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn full_name(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) runs and times
/// the measured routine.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Smoke mode still records one timed call, so CI's bench-smoke
            // job gets a (coarse) number for the perf-trajectory JSON.
            let start = Instant::now();
            black_box(routine());
            self.ns_per_iter = start.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Warm-up + calibration: find an iteration count that takes ≥ ~1 ms
        // so short routines are measured over many calls.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= 1_000_000 || batch >= 1 << 20 {
                break;
            }
            batch = if elapsed == 0 {
                batch * 64
            } else {
                (batch * 1_500_000 / elapsed.max(1)).max(batch * 2)
            };
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0_u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples.push(elapsed / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
        self.iters = total_iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a group of benchmark functions (simple `criterion_group!(name,
/// fn, ...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group then finalizing
/// (JSON output, if requested).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut c = Criterion {
            sample_size: 3,
            ..Criterion::default()
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0_u64;
                for i in 0..1000_u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].ns_per_iter > 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filters_skip_unmatched() {
        let mut c = Criterion {
            filters: vec!["wanted".into()],
            test_mode: true,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("skipped", |b| b.iter(|| panic!("must not run")));
        group.bench_function("wanted_one", |b| b.iter(|| ()));
        group.finish();
        assert_eq!(c.results.len(), 1);
    }

    #[test]
    fn json_output_is_valid_shape() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        c.bench_function("a", |b| b.iter(|| ()));
        c.add_metric("guard_overhead", 1.25);
        let path = std::env::temp_dir().join("criterion_stub_test.json");
        c.write_json(path.to_str().unwrap()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        assert!(body.contains("\"results\""));
        assert!(body.contains("\"ns_per_iter\""));
        assert!(body.contains("\"guard_overhead\": 1.2500"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ns_per_iter_lookup_finds_measurements() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| ()));
        group.finish();
        assert!(c.ns_per_iter("g", "one").is_some());
        assert!(c.ns_per_iter("g", "absent").is_none());
        assert!(c.ns_per_iter("", "one").is_none());
    }
}
