//! Cross-path equivalence and campaign-reuse properties of the batched
//! evaluation pipeline, at the deployment/campaign level (the engine-level
//! batched-vs-reference properties live in
//! `crates/snn-hw/tests/proptest_engine_equivalence.rs`).
//!
//! The process-wide [`encode_invocations`] probe is only meaningful as an
//! exact delta when nothing else encodes concurrently — libtest runs the
//! `#[test]`s of one binary on parallel threads, so every test in this
//! file that encodes holds [`ENCODE_LOCK`] for its whole body.

use softsnn::core::methodology::{
    encode_invocations, EncodedTestSet, FaultScenario, SoftSnnDeployment,
};
use softsnn::core::mitigation::Technique;
use softsnn::core::protection::ResetMonitor;
use softsnn::faults::campaign::Campaign;
use softsnn::faults::fault_map::FaultMap;
use softsnn::faults::injector::inject;
use softsnn::faults::location::{FaultDomain, FaultSpace};
use softsnn::hw::engine::{DirectRead, NoGuard};
use softsnn::sim::assignment::Assignment;
use softsnn::sim::config::SnnConfig;
use softsnn::sim::network::Network;
use softsnn::sim::quant::QuantizedNetwork;
use softsnn::sim::rng::derive_seed;
use std::sync::Mutex;

/// Serializes every encoding test in this binary (see module docs).
static ENCODE_LOCK: Mutex<()> = Mutex::new(());

/// The hand-built separable toy deployment used across the methodology
/// tests: class 0 = inputs 0..4 active, class 1 = inputs 4..8.
fn tiny_deployment() -> (SoftSnnDeployment, Vec<Vec<f32>>, Vec<usize>) {
    let cfg = SnnConfig::builder()
        .n_inputs(8)
        .n_neurons(4)
        .v_thresh(1.5)
        .v_leak(0.1)
        .v_inh(2.0)
        .t_refrac(2)
        .timesteps(30)
        .max_rate(0.8)
        .norm_frac(0.0)
        .build()
        .unwrap();
    let mut weights = vec![0.02_f32; 32];
    for i in 0..4 {
        weights[i * 4] = 0.8;
        weights[i * 4 + 1] = 0.8;
    }
    for i in 4..8 {
        weights[i * 4 + 2] = 0.8;
        weights[i * 4 + 3] = 0.8;
    }
    let net = Network::from_parts(cfg, weights).unwrap();
    let qn = QuantizedNetwork::from_network_default(&net);
    let responses = vec![vec![30, 0], vec![30, 0], vec![0, 30], vec![0, 30]];
    let assignment = Assignment::from_responses(&responses, &[10, 10]).unwrap();
    let deployment = SoftSnnDeployment::new(qn, assignment).unwrap();

    let mut images = Vec::new();
    let mut labels = Vec::new();
    for k in 0..12 {
        let mut img = vec![0.0_f32; 8];
        let class = k % 2;
        for i in 0..4 {
            img[class * 4 + i] = 1.0;
        }
        images.push(img);
        labels.push(class);
    }
    (deployment, images, labels)
}

/// Campaign grids must share one encoded test set: the whole
/// (rate × trial × technique) sweep performs zero further encodes.
#[test]
fn campaign_trials_share_one_encoded_set() {
    let _serialized = ENCODE_LOCK.lock().unwrap();
    let (mut d, images, labels) = tiny_deployment();
    let before = encode_invocations();
    let set = d.encode_test_set(&images, &labels, 42).unwrap();
    assert_eq!(encode_invocations(), before + 1, "one encode for the set");
    let campaign = Campaign::new(vec![0.02, 0.08], 3, 9);
    let space = FaultSpace::new(8, 4, FaultDomain::ComputeEngine);
    for technique in [Technique::NoMitigation, Technique::PAPER_SET[4]] {
        let result = campaign.run(&space, |map| {
            let scenario = FaultScenario {
                domain: FaultDomain::ComputeEngine,
                rate: 0.05,
                seed: map.seed(),
            };
            d.evaluate_encoded(technique, &scenario, &set)
                .unwrap()
                .accuracy()
        });
        assert_eq!(result.values.len(), 2);
    }
    assert_eq!(
        encode_invocations(),
        before + 1,
        "campaign trials must never re-encode"
    );
}

/// Encoding is deterministic and per-sample isolated: the same base seed
/// reproduces every train bit-for-bit, each sample depends only on
/// `derive_seed(base, i)` (not on its neighbours), and trains double as
/// stable inputs under `Campaign::seed_for`-derived seeds.
#[test]
fn encoded_test_set_is_deterministic_and_sample_isolated() {
    let _serialized = ENCODE_LOCK.lock().unwrap();
    let (d, images, labels) = tiny_deployment();
    let qn = d.quantized();
    let campaign = Campaign::new(vec![0.01], 4, 0xC0FFEE);
    let base = campaign.seed_for(0, 2);
    let a = EncodedTestSet::encode(qn, &images, &labels, base).unwrap();
    let b = EncodedTestSet::encode(qn, &images, &labels, base).unwrap();
    assert_eq!(a.trains(), b.trains(), "same seed → same spike trains");
    assert_eq!(a.labels(), b.labels());
    // Sample isolation: encoding a prefix yields the same leading trains.
    let prefix = EncodedTestSet::encode(qn, &images[..5], &labels[..5], base).unwrap();
    assert_eq!(&a.trains()[..5], prefix.trains());
    // A different trial's derived seed changes the spike trains.
    let c = EncodedTestSet::encode(qn, &images, &labels, campaign.seed_for(0, 3)).unwrap();
    assert_ne!(
        a.trains(),
        c.trains(),
        "distinct trial seeds → distinct trains"
    );
    // And the per-sample streams match the documented derivation.
    let _ = derive_seed(base, 0);
}

/// Deployment-level cross-path equivalence: `evaluate_encoded` (batched
/// engine pass) must agree with a hand-rolled per-sample loop over
/// `run_sample_reference` using the same injection, read path, and
/// per-sample guard cloning discipline.
#[test]
fn evaluate_encoded_matches_reference_scalar_loop() {
    let _serialized = ENCODE_LOCK.lock().unwrap();
    let (mut d, images, labels) = tiny_deployment();
    let set = d.encode_test_set(&images, &labels, 7).unwrap();
    let scenario = FaultScenario {
        domain: FaultDomain::ComputeEngine,
        rate: 0.06,
        seed: 21,
    };
    let space = FaultSpace::new(8, 4, FaultDomain::ComputeEngine);

    // --- No-Mitigation arm ---
    let batched = d
        .evaluate_encoded(Technique::NoMitigation, &scenario, &set)
        .unwrap();
    let assignment = d.assignment().clone();
    let engine = d.engine_mut();
    engine.reload_parameters(&mut NoGuard);
    let map = FaultMap::generate(&space, scenario.rate, scenario.seed);
    inject(engine, &map).unwrap();
    let mut correct = 0;
    for (train, &label) in set.trains().iter().zip(set.labels()) {
        let counts = engine.run_sample_reference(train, &DirectRead, &mut NoGuard);
        if assignment.predict(&counts) == Some(label) {
            correct += 1;
        }
    }
    assert_eq!(
        batched.correct, correct,
        "No-Mitigation: batched vs scalar reference"
    );

    // --- BnP arm (bounded path + per-sample monitor clones) ---
    let variant = softsnn::core::bounding::BnpVariant::Bnp3;
    let bnp = d
        .evaluate_encoded(Technique::Bnp(variant), &scenario, &set)
        .unwrap();
    let bounding = d.bounding_for(variant);
    let path = softsnn::core::bounding::BoundedRead::new(bounding);
    let engine = d.engine_mut();
    let mut reload_guard = ResetMonitor::paper(4);
    engine.reload_parameters(&mut reload_guard);
    inject(engine, &map).unwrap();
    let mut correct = 0;
    for (train, &label) in set.trains().iter().zip(set.labels()) {
        let mut monitor = ResetMonitor::paper(4);
        let counts = engine.run_sample_reference(train, &path, &mut monitor);
        if assignment.predict(&counts) == Some(label) {
            correct += 1;
        }
    }
    assert_eq!(bnp.correct, correct, "BnP: batched vs scalar reference");
}
