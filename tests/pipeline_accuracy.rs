//! End-to-end check: STDP training on SynthDigits reaches usable accuracy.

use snn_data::synth_digits::SynthDigits;
use snn_sim::config::SnnConfig;
use snn_sim::eval::evaluate;
use snn_sim::network::Network;
use snn_sim::rng::seeded_rng;
use snn_sim::trainer::{assign_classes, train_unsupervised, TrainOptions};

#[test]
fn synth_digits_n100_reaches_decent_accuracy() {
    let gen = SynthDigits::default();
    let train = gen.generate(600, 1);
    let test = gen.generate(100, 999);

    let cfg = SnnConfig::builder().n_neurons(100).build().unwrap();
    let mut rng = seeded_rng(42);
    let mut net = Network::new(cfg, &mut rng);
    let report = train_unsupervised(
        &mut net,
        train.images(),
        TrainOptions {
            epochs: 2,
            shuffle: true,
        },
        &mut rng,
    )
    .unwrap();
    eprintln!(
        "train: {} samples, {:.1} spikes/sample, {} silent",
        report.samples_seen,
        report.mean_spikes_per_sample(),
        report.silent_samples
    );
    let thetas = net.thetas();
    let tmax = thetas.iter().cloned().fold(0.0f32, f32::max);
    let tmean: f32 = thetas.iter().sum::<f32>() / thetas.len() as f32;
    let dead = thetas.iter().filter(|&&t| t == 0.0).count();
    eprintln!("theta: mean {tmean:.2} max {tmax:.2}, neurons never fired: {dead}");

    let assignment =
        assign_classes(&mut net, train.images(), train.labels(), 10, &mut rng).unwrap();
    eprintln!(
        "assignment coverage: {:.2}, class sizes {:?}",
        assignment.coverage(),
        assignment.class_sizes()
    );
    let result = evaluate(
        &mut net,
        &assignment,
        test.images(),
        test.labels(),
        &mut rng,
    )
    .unwrap();
    eprintln!(
        "accuracy: {:.1}% (abstained {})",
        result.accuracy_pct(),
        result.abstained
    );
    assert!(
        result.accuracy() > 0.6,
        "expected >60% accuracy, got {:.1}%",
        result.accuracy_pct()
    );
}
