//! Importance-sampled fault maps on a real smoke bench: sensitivity
//! weights tilt which sites get struck, the carried likelihood ratios
//! reweight estimates back toward the uniform-sampling answer, and the
//! estimator modes stay explicitly labeled (uniform refuses weighted
//! samples).

use snn_faults::fault_map::{FaultMap, SiteWeights};
use snn_faults::location::{FaultDomain, FaultSpace};
use snn_faults::stats::{effective_sample_size, importance_estimate, EstimatorMode};
use softsnn::data::workload::Workload;
use softsnn::exp::profile::Profile;
use softsnn::exp::workbench::prepare_cached;
use softsnn_core::methodology::EngineBackendKind;
use softsnn_core::mitigation::Technique;

const N_MAPS: usize = 8;
/// Low rate keeps each map small (≈8 sites over the N100 engine), so the
/// per-map likelihood ratio stays moderate and the unbiased estimator is
/// actually usable — importance sampling over hundreds of joint draws
/// degenerates, and this test is about estimator consistency, not that.
const RATE: f64 = 1e-4;

#[test]
fn importance_sampled_campaign_cross_checks_against_uniform() {
    let bench = prepare_cached(
        Workload::Mnist,
        100,
        Profile::Smoke,
        EngineBackendKind::Dense,
    )
    .expect("smoke bench");
    let qn = bench.deployment.quantized();
    let space = FaultSpace::new(qn.n_inputs, qn.n_neurons, FaultDomain::ComputeEngine);
    let weights = bench
        .deployment
        .sensitivity_site_weights(&bench.encoded, &space);
    assert_eq!(weights.len(), space.total_locations());
    assert_eq!(weights.n_positive(), weights.len());

    // Uniform draws: the reference estimate.
    let mut uniform_vals = Vec::with_capacity(N_MAPS);
    let mut deployment = bench.deployment.clone();
    for seed in 0..N_MAPS as u64 {
        let map = FaultMap::generate(&space, RATE, seed);
        let r = deployment
            .evaluate_encoded_with_map(Technique::NoMitigation, &map, &bench.encoded)
            .unwrap();
        uniform_vals.push(r.accuracy_pct());
    }
    let zero_ratios = vec![0.0; N_MAPS];
    let uniform_mean = importance_estimate(&uniform_vals, &zero_ratios, EstimatorMode::Uniform);

    // Sensitivity-weighted draws with their likelihood ratios.
    let mut is_vals = Vec::with_capacity(N_MAPS);
    let mut log_ratios = Vec::with_capacity(N_MAPS);
    let mut any_map_differs = false;
    for seed in 0..N_MAPS as u64 {
        let wm = FaultMap::generate_weighted(&space, RATE, seed, &weights);
        assert_eq!(
            wm.map.len(),
            FaultMap::generate(&space, RATE, seed).len(),
            "weighted sampler must honor the same site budget"
        );
        if wm.map != FaultMap::generate(&space, RATE, seed) {
            any_map_differs = true;
        }
        assert!(wm.log_likelihood_ratio.is_finite());
        let r = deployment
            .evaluate_encoded_with_map(Technique::NoMitigation, &wm.map, &bench.encoded)
            .unwrap();
        is_vals.push(r.accuracy_pct());
        log_ratios.push(wm.log_likelihood_ratio);
    }
    assert!(
        any_map_differs,
        "sensitivity weights must actually tilt the draw"
    );

    // Both labeled importance estimators land near the uniform estimate.
    // At this rate accuracy sits near clean for every map, so the
    // tolerance mostly absorbs sampling noise at N_MAPS = 8.
    let self_norm = importance_estimate(
        &is_vals,
        &log_ratios,
        EstimatorMode::ImportanceSelfNormalized,
    );
    assert!(
        (self_norm - uniform_mean).abs() < 15.0,
        "self-normalized IS estimate {self_norm:.1} too far from uniform {uniform_mean:.1}"
    );
    let unbiased = importance_estimate(&is_vals, &log_ratios, EstimatorMode::ImportanceUnbiased);
    assert!(unbiased.is_finite());
    assert!(
        (unbiased - uniform_mean).abs() < 40.0,
        "unbiased IS estimate {unbiased:.1} implausibly far from uniform {uniform_mean:.1}"
    );

    // Kish effective sample size is positive and cannot exceed the draw
    // count; equal weights recover it exactly.
    let ess = effective_sample_size(&log_ratios);
    assert!(ess > 0.0 && ess <= N_MAPS as f64 + 1e-9, "ESS {ess}");
    assert!((effective_sample_size(&zero_ratios) - N_MAPS as f64).abs() < 1e-9);

    // Equal weights degenerate to the uniform distribution: every ratio
    // vanishes and the Uniform estimator accepts the samples.
    let flat = SiteWeights::uniform(space.total_locations());
    let flat_maps: Vec<_> = (0..N_MAPS as u64)
        .map(|seed| FaultMap::generate_weighted(&space, RATE, seed, &flat))
        .collect();
    for wm in &flat_maps {
        assert!(
            wm.log_likelihood_ratio.abs() < 1e-9,
            "equal weights must carry unit likelihood ratio, got ln {}",
            wm.log_likelihood_ratio
        );
    }
    let flat_ratios: Vec<f64> = flat_maps.iter().map(|wm| wm.log_likelihood_ratio).collect();
    assert!((effective_sample_size(&flat_ratios) - N_MAPS as f64).abs() < 1e-6);
}
