//! Cross-crate integration: the full SoftSNN pipeline on a toy workload —
//! train (snn-sim) → quantize → deploy (snn-hw) → inject (snn-faults) →
//! mitigate (softsnn-core) → evaluate.

use softsnn::data::dataset::Dataset;
use softsnn::prelude::*;

/// A linearly separable 4-class toy workload (quadrant blobs).
fn quadrant_dataset(n: usize, seed: u64) -> Dataset {
    use rand::Rng as _;
    let side = 12_usize;
    let mut rng = seeded_rng(seed);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for k in 0..n {
        let class = k % 4;
        let mut img = vec![0.0_f32; side * side];
        let (qx, qy) = (class % 2, class / 2);
        for _ in 0..14 {
            let x = qx * side / 2 + rng.gen_range(1..side / 2 - 1);
            let y = qy * side / 2 + rng.gen_range(1..side / 2 - 1);
            img[y * side + x] = 0.95;
        }
        images.push(img);
        labels.push(class);
    }
    Dataset::new(side, side, 4, images, labels).expect("consistent shapes")
}

fn toy_deployment() -> (SoftSnnDeployment, Dataset) {
    let train = quadrant_dataset(120, 1);
    let test = quadrant_dataset(60, 2);
    let cfg = SnnConfig::builder()
        .n_inputs(144)
        .n_neurons(48)
        .v_thresh(5.0)
        .v_inh(8.0)
        .max_rate(0.4)
        .timesteps(60)
        .build()
        .expect("valid config");
    let deployment = SoftSnnDeployment::train(
        cfg,
        train.images(),
        train.labels(),
        TrainPipelineOptions {
            epochs: 3,
            n_classes: 4,
            seed: 9,
        },
    )
    .expect("training succeeds");
    (deployment, test)
}

#[test]
fn full_pipeline_learns_and_survives_faults() {
    let (mut deployment, test) = toy_deployment();
    let mut rng = seeded_rng(50);

    let clean = deployment
        .evaluate(
            Technique::NoMitigation,
            &FaultScenario::clean(),
            test.images(),
            test.labels(),
            &mut rng,
        )
        .expect("clean eval");
    assert!(
        clean.accuracy() > 0.7,
        "toy task should be easy, got {:.2}",
        clean.accuracy()
    );

    // Under heavy compute-engine faults, BnP must clearly beat the
    // unprotected engine on average over several fault maps (per-map
    // comparisons are noisy at toy scale).
    let n_maps = 10;
    let mut nomit_accs = Vec::new();
    let mut bnp_accs = Vec::new();
    for map_seed in 0..n_maps {
        let scenario = FaultScenario {
            domain: FaultDomain::ComputeEngine,
            rate: 0.1,
            seed: 100 + map_seed,
        };
        let nomit = deployment
            .evaluate(
                Technique::NoMitigation,
                &scenario,
                test.images(),
                test.labels(),
                &mut seeded_rng(200 + map_seed),
            )
            .expect("nomit eval");
        let bnp = deployment
            .evaluate(
                Technique::Bnp(BnpVariant::Bnp3),
                &scenario,
                test.images(),
                test.labels(),
                &mut seeded_rng(200 + map_seed),
            )
            .expect("bnp eval");
        eprintln!(
            "map {map_seed}: nomit {:.2} bnp3 {:.2}",
            nomit.accuracy(),
            bnp.accuracy()
        );
        nomit_accs.push(nomit.accuracy());
        bnp_accs.push(bnp.accuracy());
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let (m_nomit, m_bnp) = (mean(&nomit_accs), mean(&bnp_accs));
    assert!(
        m_bnp >= m_nomit - 0.03,
        "BnP3 mean {m_bnp:.2} must not trail no-mitigation mean {m_nomit:.2}"
    );

    // The structural mechanism: with Vmem-reset faults injected, burst
    // neurons dominate the spike counts without protection, and the
    // reset monitor mutes exactly those neurons.
    use softsnn::core::protection::ResetMonitor;
    use softsnn::faults::fault_map::FaultMap;
    use softsnn::faults::injector::inject;
    use softsnn::faults::location::FaultSpace;
    use softsnn::hw::engine::{DirectRead, NoGuard};
    use softsnn::hw::neuron_unit::NeuronOp;
    use softsnn::sim::encoding::PoissonEncoder;

    let qn = deployment.quantized().clone();
    let engine = deployment.engine_mut();
    engine.reload_parameters(&mut NoGuard);
    let space = FaultSpace::new(
        qn.n_inputs,
        qn.n_neurons,
        FaultDomain::Neurons(Some(NeuronOp::VmemReset)),
    );
    let map = FaultMap::generate(&space, 0.25, 5);
    inject(engine, &map).expect("fits");
    let faulty: Vec<usize> = engine
        .neurons()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.faults.vr)
        .map(|(j, _)| j)
        .collect();
    assert!(!faulty.is_empty());

    // Saturating stimulus: every input channel active, so any vr-faulty
    // neuron with nonzero incoming weight is driven past threshold and
    // actually manifests its burst (a weakly driven faulty neuron never
    // would, regardless of the fault).
    let encoder = PoissonEncoder::new(qn.max_rate);
    let bright = vec![0.95_f32; qn.n_inputs];
    let train = encoder.encode(&bright, qn.timesteps, &mut seeded_rng(90));
    let unprotected = engine.run_sample(&train, &DirectRead, &mut NoGuard);
    let burst_mean =
        faulty.iter().map(|&j| unprotected[j] as f64).sum::<f64>() / faulty.len() as f64;
    let healthy_max = unprotected
        .iter()
        .enumerate()
        .filter(|(j, _)| !faulty.contains(j))
        .map(|(_, &c)| c)
        .max()
        .unwrap_or(0) as f64;
    assert!(
        burst_mean > healthy_max * 2.0,
        "burst neurons must dominate: burst mean {burst_mean}, healthy max {healthy_max}"
    );

    // Only faulty neurons that actually burst (crossed threshold and got
    // stuck) can and must be latched; a vr-faulty neuron that never
    // received enough drive never manifests its fault.
    let bursting: Vec<usize> = faulty
        .iter()
        .copied()
        .filter(|&j| unprotected[j] as f64 > healthy_max.max(4.0))
        .collect();
    assert!(
        !bursting.is_empty(),
        "scenario must produce at least one actual burst"
    );
    let mut monitor = ResetMonitor::paper(qn.n_neurons);
    let protected = engine.run_sample(&train, &DirectRead, &mut monitor);
    for &j in &bursting {
        assert!(
            monitor.is_disabled(j),
            "monitor must latch burst neuron {j}"
        );
        assert!(
            protected[j] <= 2,
            "protected burst neuron {j} fired {} times",
            protected[j]
        );
    }
}

#[test]
fn reexecution_stays_near_clean_accuracy() {
    let (mut deployment, test) = toy_deployment();
    let clean = deployment
        .evaluate(
            Technique::NoMitigation,
            &FaultScenario::clean(),
            test.images(),
            test.labels(),
            &mut seeded_rng(51),
        )
        .expect("clean eval");
    let scenario = FaultScenario {
        domain: FaultDomain::ComputeEngine,
        rate: 0.1,
        seed: 7,
    };
    let re = deployment
        .evaluate(
            Technique::ReExecution { runs: 3 },
            &scenario,
            test.images(),
            test.labels(),
            &mut seeded_rng(52),
        )
        .expect("reexec eval");
    // Paper Fig. 13: re-execution's curves are flat near clean accuracy.
    assert!(
        re.accuracy() >= clean.accuracy() - 0.15,
        "re-execution {:.2} must stay near clean {:.2}",
        re.accuracy(),
        clean.accuracy()
    );
}

#[test]
fn all_techniques_agree_on_clean_engine() {
    let (mut deployment, test) = toy_deployment();
    let mut accs = Vec::new();
    for technique in Technique::PAPER_SET {
        let r = deployment
            .evaluate(
                technique,
                &FaultScenario::clean(),
                test.images(),
                test.labels(),
                &mut seeded_rng(60),
            )
            .expect("clean eval");
        accs.push(r.accuracy());
    }
    let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accs.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        max - min < 0.15,
        "without faults all techniques should agree (got {accs:?})"
    );
}

#[test]
fn monitor_latches_do_not_harm_clean_networks() {
    // A healthy engine must never trip the reset monitor badly enough to
    // change outcomes: BnP on a clean engine ≈ baseline on a clean engine.
    let (mut deployment, test) = toy_deployment();
    let base = deployment
        .evaluate(
            Technique::NoMitigation,
            &FaultScenario::clean(),
            test.images(),
            test.labels(),
            &mut seeded_rng(70),
        )
        .expect("clean eval");
    let bnp = deployment
        .evaluate(
            Technique::Bnp(BnpVariant::Bnp1),
            &FaultScenario::clean(),
            test.images(),
            test.labels(),
            &mut seeded_rng(70),
        )
        .expect("bnp eval");
    assert!(
        (bnp.accuracy() - base.accuracy()).abs() < 0.1,
        "clean BnP {:.2} vs clean baseline {:.2}",
        bnp.accuracy(),
        base.accuracy()
    );
}
