//! Assertions that the reproduction matches the paper's published
//! numbers/shapes wherever they are deterministic (the hardware cost
//! models of Figs. 3b and 14) — the quantitative contract of
//! EXPERIMENTS.md.

use softsnn::core::mitigation::Technique;
use softsnn::core::overhead::{fig14_grid, normalize_grid, PAPER_SIZES};
use softsnn::hw::mapping::Tiling;
use softsnn::hw::params::EngineConfig;
use softsnn::prelude::BnpVariant;

fn lookup(
    norm: &[(Technique, usize, f64, f64, f64)],
    technique: Technique,
    n: usize,
) -> (f64, f64, f64) {
    let row = norm
        .iter()
        .find(|(t, size, ..)| *t == technique && *size == n)
        .expect("grid covers combination");
    (row.2, row.3, row.4)
}

#[test]
fn fig14a_latency_bars_match_paper() {
    let norm = normalize_grid(&fig14_grid(&PAPER_SIZES, 100));
    // Paper bar labels: NoMit 1.0/2.0/3.5/5.0/7.5; ReExec 3.0/6.0/10.5/
    // 15.0/22.5; BnP1 = NoMit; BnP2/3 ~ 1.06x NoMit (printed 1.1/2.1/3.7/
    // 5.3/7.9).
    let nomit = [1.0, 2.0, 3.5, 5.0, 7.5];
    for (i, &n) in PAPER_SIZES.iter().enumerate() {
        let (lat, ..) = lookup(&norm, Technique::NoMitigation, n);
        assert!((lat - nomit[i]).abs() < 0.01, "NoMit N{n}: {lat}");
        let (lat_re, ..) = lookup(&norm, Technique::ReExecution { runs: 3 }, n);
        assert!(
            (lat_re - 3.0 * nomit[i]).abs() < 0.03,
            "ReExec N{n}: {lat_re}"
        );
        let (lat_b1, ..) = lookup(&norm, Technique::Bnp(BnpVariant::Bnp1), n);
        assert!((lat_b1 - nomit[i]).abs() < 0.01, "BnP1 N{n}: {lat_b1}");
        let (lat_b2, ..) = lookup(&norm, Technique::Bnp(BnpVariant::Bnp2), n);
        let paper_b2 = [1.1, 2.1, 3.7, 5.3, 7.9][i];
        assert!(
            (lat_b2 - paper_b2).abs() < 0.06,
            "BnP2 N{n}: {lat_b2} vs paper {paper_b2}"
        );
    }
}

#[test]
fn fig14b_energy_bars_match_paper() {
    let norm = normalize_grid(&fig14_grid(&PAPER_SIZES, 100));
    let paper_bnp1 = [1.3, 2.6, 4.5, 6.4, 9.6];
    let paper_bnp23 = [1.6, 3.1, 5.5, 7.8, 11.7];
    for (i, &n) in PAPER_SIZES.iter().enumerate() {
        let (_, e1, _) = lookup(&norm, Technique::Bnp(BnpVariant::Bnp1), n);
        assert!(
            (e1 - paper_bnp1[i]).abs() / paper_bnp1[i] < 0.06,
            "BnP1 energy N{n}: {e1} vs paper {}",
            paper_bnp1[i]
        );
        for v in [BnpVariant::Bnp2, BnpVariant::Bnp3] {
            let (_, e, _) = lookup(&norm, Technique::Bnp(v), n);
            assert!(
                (e - paper_bnp23[i]).abs() / paper_bnp23[i] < 0.06,
                "{v} energy N{n}: {e} vs paper {}",
                paper_bnp23[i]
            );
        }
    }
}

#[test]
fn fig14c_area_bars_match_paper() {
    let norm = normalize_grid(&fig14_grid(&[400], 100));
    let paper = [
        (Technique::NoMitigation, 1.00),
        (Technique::ReExecution { runs: 3 }, 1.00),
        (Technique::Bnp(BnpVariant::Bnp1), 1.14),
        (Technique::Bnp(BnpVariant::Bnp2), 1.18),
        (Technique::Bnp(BnpVariant::Bnp3), 1.18),
    ];
    for (technique, expected) in paper {
        let (.., area) = lookup(&norm, technique, 400);
        assert!(
            (area - expected).abs() < 0.01,
            "{technique} area {area} vs paper {expected}"
        );
    }
}

#[test]
fn headline_savings_match_abstract() {
    // "reducing latency and energy by up to 3x and 2.3x respectively, as
    // compared to the re-execution technique" (for N900 at rate 0.1, but
    // the ratios hold across sizes).
    let norm = normalize_grid(&fig14_grid(&PAPER_SIZES, 100));
    let (lat_re, e_re, _) = lookup(&norm, Technique::ReExecution { runs: 3 }, 900);
    let (lat_b1, e_b1, _) = lookup(&norm, Technique::Bnp(BnpVariant::Bnp1), 900);
    let lat_saving = lat_re / lat_b1;
    let energy_saving = e_re / e_b1;
    assert!(
        (2.9..=3.1).contains(&lat_saving),
        "latency saving {lat_saving} vs paper 3x"
    );
    assert!(
        (2.2..=2.4).contains(&energy_saving),
        "energy saving {energy_saving} vs paper 2.3x"
    );
}

#[test]
fn tiling_ladder_is_the_paper_ladder() {
    let base = Tiling::for_network(EngineConfig::PAPER, 784, 400).passes_per_timestep() as f64;
    let expected = [
        (400, 1.0),
        (900, 2.0),
        (1600, 3.5),
        (2500, 5.0),
        (3600, 7.5),
    ];
    for (n, e) in expected {
        let r =
            Tiling::for_network(EngineConfig::PAPER, 784, n).passes_per_timestep() as f64 / base;
        assert!((r - e).abs() < 1e-9, "N{n}: {r} vs {e}");
    }
}
