//! Pinned-seed training regression: a fixed-seed, smoke-scale synthetic
//! workload trained through the full `snn_sim` pipeline (unsupervised
//! STDP → class assignment → evaluation) must stay bit-identical through
//! the allocation-free / layout-aware trainer fast path.
//!
//! Any drift here means the fast path changed simulation semantics — the
//! trainer equivalence proptests
//! (`crates/snn/tests/proptest_trainer_equivalence.rs`) localize which
//! operation diverged.
//!
//! Captured at PR 4 from commit 861b075 (pre-fast-path), synthetic MNIST
//! (SynthDigits), 60 train / 30 test samples, N50, 40 timesteps.

use softsnn::data::workload::Workload;
use softsnn::sim::config::SnnConfig;
use softsnn::sim::eval::evaluate;
use softsnn::sim::network::Network;
use softsnn::sim::rng::seeded_rng;
use softsnn::sim::trainer::{assign_classes, train_unsupervised, TrainOptions};

/// FNV-1a over the exact bit patterns, so any single-ULP drift in any
/// weight changes the checksum.
fn bits_checksum(values: &[f32]) -> u64 {
    values.iter().fold(0xcbf2_9ce4_8422_2325_u64, |h, v| {
        (h ^ u64::from(v.to_bits())).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

#[test]
fn smoke_training_is_bit_identical_to_pre_fastpath_capture() {
    let (train, test) = Workload::Mnist.generate(60, 30, 0xD1E7);
    let cfg = SnnConfig::builder()
        .n_neurons(50)
        .timesteps(40)
        .rest_steps(10)
        .build()
        .unwrap();
    let mut rng = seeded_rng(0x7217);
    let mut net = Network::new(cfg, &mut rng);

    let report = train_unsupervised(
        &mut net,
        train.images(),
        TrainOptions {
            epochs: 2,
            shuffle: true,
        },
        &mut rng,
    )
    .unwrap();
    let assignment = assign_classes(
        &mut net,
        train.images(),
        train.labels(),
        train.n_classes(),
        &mut rng,
    )
    .unwrap();
    let result = evaluate(
        &mut net,
        &assignment,
        test.images(),
        test.labels(),
        &mut rng,
    )
    .unwrap();

    assert_eq!(
        bits_checksum(net.weights()),
        0xff6d_ff5e_612c_9659,
        "trained weights drifted from the pre-fast-path capture"
    );
    assert_eq!(
        bits_checksum(net.thetas()),
        0x2450_a0bc_1de1_7e65,
        "adaptive thresholds drifted from the pre-fast-path capture"
    );
    assert_eq!(report.samples_seen, 120);
    assert_eq!(report.total_output_spikes, 1104);
    assert_eq!(report.silent_samples, 0);
    assert_eq!(
        assignment.coverage().to_bits(),
        0x3fef_5c28_f5c2_8f5c,
        "assignment coverage drifted: got {}",
        assignment.coverage()
    );
    assert_eq!(
        result.accuracy().to_bits(),
        0x3fdb_bbbb_bbbb_bbbc,
        "assignment accuracy drifted: got {} (expected 13/30)",
        result.accuracy()
    );
    assert_eq!((result.correct, result.abstained), (13, 0));
}
