//! Pinned-seed regression: the fig9 smoke numbers and the smoke-scale
//! clean accuracy, captured on the pre-batching sequential evaluation
//! pipeline, must stay bit-identical through the batched engine pass.
//!
//! `NoGuard` is stateless, so the batched No-Mitigation path (which both
//! numbers flow through — clean accuracy via `evaluate_encoded`, fig9 via
//! the same `prepare()` plumbing) is bit-for-bit the sequential loop; any
//! drift here means the batched pass changed simulation semantics.
//!
//! Captured at PR 3 from commit 9a7528e (pre-batching), Smoke profile,
//! synthetic MNIST (no `data/` directory), N100 / case-study size.

use softsnn::data::workload::Workload;
use softsnn::exp::profile::Profile;
use softsnn::exp::workbench::prepare;
use softsnn::exp::{fig13, fig9};
use softsnn_core::mitigation::Technique;

#[test]
fn fig9_smoke_numbers_are_bit_identical_to_pre_batching_capture() {
    let r = fig9::run(Profile::Smoke).unwrap();
    assert_eq!(
        r.out_of_range_fraction.to_bits(),
        0x3f93_0463_796a_c9e0,
        "out_of_range_fraction drifted: got {}",
        r.out_of_range_fraction
    );
    assert_eq!(r.clean.wgh_max_code, 77);
    assert_eq!(r.clean.wgh_hp_code, 6);
    assert_eq!(r.clean.histogram.total(), 78400);
    assert_eq!(r.faulty.total(), 78400);
    // Spot-pin the head of the faulty histogram (full vector captured at
    // PR 3; the head carries most of the mass).
    assert_eq!(
        &r.faulty.counts()[..6],
        &[8469, 13936, 13272, 13039, 12882, 9364]
    );
}

/// Pinned-seed regression for the campaign-grid refactor: the full Fig. 13
/// smoke grid (5 techniques × 4 rates × 3 trials on synthetic MNIST N100),
/// captured at commit 36ff0d7 on the pre-grid per-point pipeline (private
/// `Point` structs, one deployment clone per point, O(points²)
/// aggregation), must stay bit-identical through `GridSpec`/`GridRunner`
/// sharding, shard-local deployment reuse, and the engine's multi-map
/// trial batching. Any drift here means the grid layer changed seeds,
/// point order, or simulation semantics.
#[test]
fn fig13_smoke_cells_are_bit_identical_to_pre_grid_capture() {
    let r = fig13::run(Profile::Smoke, &[Workload::Mnist]).unwrap();
    assert_eq!(r.cells.len(), 20, "5 techniques × 4 rates");
    // (technique index into PAPER_SET, rate, mean bits) for every cell.
    let expected_means: [(usize, f64, u64); 20] = [
        (0, 1e-4, 0x4050_0AAA_AAAA_AAAB),
        (0, 1e-3, 0x404E_D555_5555_5555),
        (0, 1e-2, 0x4044_6AAA_AAAA_AAAB),
        (0, 1e-1, 0x4033_2AAA_AAAA_AAAB),
        (1, 1e-4, 0x404F_4000_0000_0000),
        (1, 1e-3, 0x404F_4000_0000_0000),
        (1, 1e-2, 0x4051_8000_0000_0000),
        (1, 1e-1, 0x404F_4000_0000_0000),
        (2, 1e-4, 0x404F_4000_0000_0000),
        (2, 1e-3, 0x4050_0AAA_AAAA_AAAB),
        (2, 1e-2, 0x404C_5555_5555_5555),
        (2, 1e-1, 0x403A_AAAA_AAAA_AAAB),
        (3, 1e-4, 0x404F_AAAA_AAAA_AAAB),
        (3, 1e-3, 0x404F_4000_0000_0000),
        (3, 1e-2, 0x4048_9555_5555_5555),
        (3, 1e-1, 0x4033_2AAA_AAAA_AAAB),
        (4, 1e-4, 0x404F_AAAA_AAAA_AAAB),
        (4, 1e-3, 0x4050_4000_0000_0000),
        (4, 1e-2, 0x404F_4000_0000_0000),
        (4, 1e-1, 0x4037_5555_5555_5555),
    ];
    for (cell, &(technique_idx, rate, mean_bits)) in r.cells.iter().zip(&expected_means) {
        assert_eq!(
            cell.technique,
            Technique::PAPER_SET[technique_idx],
            "cell order"
        );
        assert_eq!(cell.rate, rate, "cell order");
        assert_eq!(
            cell.mean_pct.to_bits(),
            mean_bits,
            "{} @ {}: mean drifted, got {}",
            cell.technique,
            cell.rate,
            cell.mean_pct
        );
        assert_eq!(cell.trials.len(), 3);
    }
    // Spot-pin two cells' individual trial values (captured bit patterns),
    // so per-trial seeds — not just means — are locked.
    let nomit_high: Vec<u64> = r.cells[3].trials.iter().map(|t| t.to_bits()).collect();
    assert_eq!(
        nomit_high,
        vec![
            0x4039_0000_0000_0000,
            0x4029_0000_0000_0000,
            0x4034_0000_0000_0000
        ]
    );
    let bnp3_mid: Vec<u64> = r.cells[18].trials.iter().map(|t| t.to_bits()).collect();
    assert_eq!(
        bnp3_mid,
        vec![
            0x4050_4000_0000_0000,
            0x404E_0000_0000_0000,
            0x404F_4000_0000_0000
        ]
    );
}

#[test]
fn smoke_clean_accuracy_is_bit_identical_to_pre_batching_capture() {
    let bench = prepare(Workload::Mnist, 100, Profile::Smoke).unwrap();
    assert_eq!(
        bench.clean_accuracy.to_bits(),
        0x404f_4000_0000_0000,
        "smoke clean accuracy drifted: got {} (expected 62.5)",
        bench.clean_accuracy
    );
}
