//! Pinned-seed regression: the fig9 smoke numbers and the smoke-scale
//! clean accuracy, captured on the pre-batching sequential evaluation
//! pipeline, must stay bit-identical through the batched engine pass.
//!
//! `NoGuard` is stateless, so the batched No-Mitigation path (which both
//! numbers flow through — clean accuracy via `evaluate_encoded`, fig9 via
//! the same `prepare()` plumbing) is bit-for-bit the sequential loop; any
//! drift here means the batched pass changed simulation semantics.
//!
//! Captured at PR 3 from commit 9a7528e (pre-batching), Smoke profile,
//! synthetic MNIST (no `data/` directory), N100 / case-study size.

use softsnn::data::workload::Workload;
use softsnn::exp::fig9;
use softsnn::exp::profile::Profile;
use softsnn::exp::workbench::prepare;

#[test]
fn fig9_smoke_numbers_are_bit_identical_to_pre_batching_capture() {
    let r = fig9::run(Profile::Smoke).unwrap();
    assert_eq!(
        r.out_of_range_fraction.to_bits(),
        0x3f93_0463_796a_c9e0,
        "out_of_range_fraction drifted: got {}",
        r.out_of_range_fraction
    );
    assert_eq!(r.clean.wgh_max_code, 77);
    assert_eq!(r.clean.wgh_hp_code, 6);
    assert_eq!(r.clean.histogram.total(), 78400);
    assert_eq!(r.faulty.total(), 78400);
    // Spot-pin the head of the faulty histogram (full vector captured at
    // PR 3; the head carries most of the mass).
    assert_eq!(
        &r.faulty.counts()[..6],
        &[8469, 13936, 13272, 13039, 12882, 9364]
    );
}

#[test]
fn smoke_clean_accuracy_is_bit_identical_to_pre_batching_capture() {
    let bench = prepare(Workload::Mnist, 100, Profile::Smoke).unwrap();
    assert_eq!(
        bench.clean_accuracy.to_bits(),
        0x404f_4000_0000_0000,
        "smoke clean accuracy drifted: got {} (expected 62.5)",
        bench.clean_accuracy
    );
}
