//! The bit-accurate integer engine must agree with the frozen float
//! simulator: same architecture, same input spikes, near-identical
//! behavior (differences bounded by quantization error).

use softsnn::hw::engine::{ComputeEngine, DirectRead, NoGuard};
use softsnn::prelude::*;
use softsnn::sim::encoding::PoissonEncoder;

fn trained_pair() -> (Network, ComputeEngine) {
    let cfg = SnnConfig::builder()
        .n_inputs(64)
        .n_neurons(16)
        .v_thresh(4.0)
        .v_inh(6.0)
        .timesteps(50)
        .build()
        .expect("valid config");
    let mut rng = seeded_rng(5);
    let mut net = Network::new(cfg, &mut rng);
    // Brief unsupervised shaping so weights are non-trivial.
    let images: Vec<Vec<f32>> = (0..40)
        .map(|k| {
            let mut img = vec![0.05_f32; 64];
            for i in 0..16 {
                img[(k % 4) * 16 + i] = 0.9;
            }
            img
        })
        .collect();
    softsnn::sim::trainer::train_unsupervised(
        &mut net,
        &images,
        softsnn::sim::trainer::TrainOptions {
            epochs: 2,
            shuffle: true,
        },
        &mut rng,
    )
    .expect("training succeeds");
    net.set_frozen();
    let qn = QuantizedNetwork::from_network_default(&net);
    let engine = ComputeEngine::for_network(&qn).expect("deployable");
    (net, engine)
}

#[test]
fn spike_counts_match_within_quantization_tolerance() {
    let (mut net, mut engine) = trained_pair();
    let encoder = PoissonEncoder::new(net.cfg().max_rate);
    let timesteps = net.cfg().timesteps;

    let mut float_total = 0_u64;
    let mut int_total = 0_u64;
    let mut per_neuron_float = vec![0_u64; 16];
    let mut per_neuron_int = vec![0_u64; 16];
    for s in 0..30 {
        let mut img = vec![0.05_f32; 64];
        for i in 0..16 {
            img[(s % 4) * 16 + i] = 0.9;
        }
        let train = encoder.encode(&img, timesteps, &mut seeded_rng(1000 + s as u64));
        let f = net.run_sample(&train);
        let i = engine.run_sample(&train, &DirectRead, &mut NoGuard);
        for j in 0..16 {
            per_neuron_float[j] += f[j] as u64;
            per_neuron_int[j] += i[j] as u64;
        }
        float_total += f.iter().map(|&c| c as u64).sum::<u64>();
        int_total += i.iter().map(|&c| c as u64).sum::<u64>();
    }
    assert!(float_total > 50, "float sim should be active");
    let ratio = int_total as f64 / float_total as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "totals diverge: int {int_total} vs float {float_total}"
    );
    // Per-neuron activity pattern must correlate strongly: compare ranks
    // of the most active neurons.
    let top_float = argmax(&per_neuron_float);
    let top_int = argmax(&per_neuron_int);
    assert_eq!(
        top_float, top_int,
        "most active neuron should agree between simulators"
    );
}

fn argmax(xs: &[u64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
        .expect("nonempty")
}

#[test]
fn engine_is_deterministic_given_spike_train() {
    let (_net, mut engine) = trained_pair();
    let encoder = PoissonEncoder::new(0.3);
    let train = encoder.encode(&vec![0.5_f32; 64], 50, &mut seeded_rng(77));
    let a = engine.run_sample(&train, &DirectRead, &mut NoGuard);
    let b = engine.run_sample(&train, &DirectRead, &mut NoGuard);
    assert_eq!(a, b);
}
