//! Cross-job cache gate: two jobs submitted over one configuration must
//! train and encode exactly once — the second submit is a cache hit and
//! triggers no new test-set encoding.
//!
//! This lives in its own integration-test binary (own process) so the
//! process-wide `cache_stats()` / `encode_invocations()` counters are not
//! perturbed by unrelated tests running in parallel threads.

use snn_faults::service::RunOptions;
use snn_faults::CampaignService;
use softsnn::data::workload::Workload;
use softsnn::exp::campaign::{self, JobConfig, JobRunOutcome};
use softsnn::exp::profile::Profile;
use softsnn::exp::workbench;
use softsnn_core::methodology::{encode_invocations, EngineBackendKind};

#[test]
fn second_job_hits_the_cross_job_cache() {
    let root = std::env::temp_dir().join(format!("softsnn_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let service = CampaignService::new(&root);
    let config = JobConfig {
        workload: Workload::Mnist,
        n_neurons: 100,
        profile: Profile::Smoke,
        backend: EngineBackendKind::Dense,
    };

    let before = workbench::cache_stats();
    let (job_a, bench_a) = campaign::submit_job(&service, "a", config).unwrap();
    let after_first = workbench::cache_stats();
    assert_eq!(after_first.misses, before.misses + 1, "first job trains");
    let encodes_after_first = encode_invocations();

    // Second job over the same configuration: no training, no encoding —
    // one cross-job cache hit.
    let (job_b, bench_b) = campaign::submit_job(&service, "b", config).unwrap();
    let after_second = workbench::cache_stats();
    assert_eq!(
        after_second.hits,
        after_first.hits + 1,
        "second job must hit"
    );
    assert_eq!(
        after_second.misses, after_first.misses,
        "no second training"
    );
    assert_eq!(
        encode_invocations(),
        encodes_after_first,
        "second job must not re-encode the test set"
    );

    // Both handles fingerprint the same bench, and the shared bench is
    // actually usable: run a couple of cells of each job through it.
    assert_eq!(job_a.fingerprint(), job_b.fingerprint());
    for (job, bench) in [(&job_a, &bench_a), (&job_b, &bench_b)] {
        let opts = RunOptions {
            max_cells: Some(2),
            ..RunOptions::default()
        };
        match campaign::run_job(job, bench, opts).unwrap() {
            JobRunOutcome::Interrupted { done, .. } => assert_eq!(done, 2),
            JobRunOutcome::Complete(_) => panic!("2-cell budget must interrupt"),
        }
    }

    let _ = std::fs::remove_dir_all(&root);
}
