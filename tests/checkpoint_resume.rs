//! Checkpoint robustness for the campaign service: a real Fig. 13 smoke
//! grid is interrupted mid-run, one of its checkpoints is corrupted, and
//! the resumed job must re-run exactly the missing/corrupt cells and
//! still produce results bit-identical to an uninterrupted one-shot run.

use snn_faults::service::RunOptions;
use snn_faults::CampaignService;
use softsnn::data::workload::Workload;
use softsnn::exp::campaign::{self, JobConfig, JobRunOutcome};
use softsnn::exp::fig13;
use softsnn::exp::profile::Profile;
use softsnn_core::methodology::EngineBackendKind;

#[test]
fn interrupted_and_corrupted_grid_resumes_bit_identically() {
    let root = std::env::temp_dir().join(format!("softsnn_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let service = CampaignService::new(&root);
    let config = JobConfig {
        workload: Workload::Mnist,
        n_neurons: 100,
        profile: Profile::Smoke,
        backend: EngineBackendKind::Dense,
    };
    let (job, bench) = campaign::submit_job(&service, "smoke", config).unwrap();
    let total = job.spec().n_cells();
    assert_eq!(total, 20, "fig13 smoke grid: 5 techniques x 4 rates");

    // "Kill it mid-grid": evaluate 7 of 20 cells, then stop.
    let opts = RunOptions {
        max_cells: Some(7),
        ..RunOptions::default()
    };
    match campaign::run_job(&job, &bench, opts).unwrap() {
        JobRunOutcome::Interrupted { done, total: t } => {
            assert_eq!((done, t), (7, total));
        }
        JobRunOutcome::Complete(_) => panic!("7 < {total} cells must interrupt"),
    }

    // Corrupt one surviving checkpoint by truncating it mid-file.
    let cells_dir = job.dir().join("cells");
    let mut files: Vec<_> = std::fs::read_dir(&cells_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 7);
    let victim = &files[3];
    let text = std::fs::read_to_string(victim).unwrap();
    std::fs::write(victim, &text[..text.len() / 2]).unwrap();

    // The store distinguishes "never ran" from "corrupt": 6 cells stay
    // valid, the victim is flagged, and resume owes exactly the other 14.
    let status = job.status().unwrap();
    assert_eq!(status.total_cells, total);
    assert_eq!(status.done_cells, 6);
    assert_eq!(status.invalid_cells.len(), 1);
    assert_eq!(job.missing_cells().unwrap().len(), 14);

    // Resume to completion.
    let resumed = match campaign::run_job(&job, &bench, RunOptions::default()).unwrap() {
        JobRunOutcome::Complete(results) => results,
        JobRunOutcome::Interrupted { done, total } => {
            panic!("full pass must complete, stopped at {done}/{total}")
        }
    };
    assert!(job.status().unwrap().is_complete());

    // The spliced-together artifact is byte-identical to an uninterrupted
    // one-shot figure run over the same configuration.
    let oneshot = fig13::run(Profile::Smoke, &[Workload::Mnist]).unwrap();
    assert_eq!(
        fig13::to_json(&resumed).render(),
        fig13::to_json(&oneshot).render(),
        "resumed artifact diverged from the one-shot run"
    );

    let _ = std::fs::remove_dir_all(&root);
}
