//! Cross-crate property-based tests (proptest) on the core invariants of
//! the reproduction.

use proptest::prelude::*;
use softsnn::core::analysis::WeightAnalysis;
use softsnn::core::bounding::{BnpVariant, BoundingConfig};
use softsnn::faults::fault_map::FaultMap;
use softsnn::faults::injector::inject;
use softsnn::faults::location::{FaultDomain, FaultSpace};
use softsnn::hw::engine::{ComputeEngine, NoGuard};
use softsnn::prelude::*;
use softsnn::sim::quant::QuantScheme;

fn small_engine(seed: u64) -> ComputeEngine {
    let cfg = SnnConfig::builder()
        .n_inputs(16)
        .n_neurons(6)
        .build()
        .expect("valid config");
    let net = Network::new(cfg, &mut seeded_rng(seed));
    let qn = QuantizedNetwork::from_network_default(&net);
    ComputeEngine::for_network(&qn).expect("deployable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 1 invariant: a bounded read is always either the original
    /// in-range code or exactly the configured default.
    #[test]
    fn bounding_output_is_original_or_default(
        codes in prop::collection::vec(0_u8..=255, 1..200),
        raw in 0_u8..=255,
        variant_idx in 0_usize..3,
    ) {
        let analysis = WeightAnalysis::of_codes(&codes, 255);
        let variant = BnpVariant::ALL[variant_idx];
        let bounding = BoundingConfig::for_variant(variant, &analysis);
        let out = bounding.bound(raw);
        prop_assert!(out == raw || out == bounding.default_code);
        // And the passthrough condition is exactly the safe range.
        if raw <= analysis.wgh_max_code {
            prop_assert_eq!(out, raw, "clean codes must pass unmodified");
        }
    }

    /// Bounded reads never exceed the clean maximum under BnP1/BnP2 (BnP3
    /// replaces with the in-range mode, also <= wgh_max).
    #[test]
    fn bounded_reads_stay_in_safe_range(
        codes in prop::collection::vec(0_u8..=200, 10..100),
        raw in 0_u8..=255,
        variant_idx in 0_usize..3,
    ) {
        let analysis = WeightAnalysis::of_codes(&codes, 255);
        let bounding = BoundingConfig::for_variant(BnpVariant::ALL[variant_idx], &analysis);
        prop_assert!(bounding.bound(raw) <= analysis.wgh_max_code);
    }

    /// Fault maps are deterministic in their seed and respect the rate.
    #[test]
    fn fault_maps_are_deterministic_and_sized(
        rate in 0.0_f64..=0.3,
        seed in any::<u64>(),
    ) {
        let space = FaultSpace::new(30, 10, FaultDomain::ComputeEngine);
        let a = FaultMap::generate(&space, rate, seed);
        let b = FaultMap::generate(&space, rate, seed);
        prop_assert_eq!(a.sites(), b.sites());
        let expected = (rate * space.total_locations() as f64).round() as usize;
        prop_assert_eq!(a.len(), expected);
    }

    /// Injection followed by parameter reload always restores the clean
    /// engine (the paper's healing semantics).
    #[test]
    fn reload_always_heals(rate in 0.0_f64..=0.5, seed in any::<u64>()) {
        let mut engine = small_engine(3);
        let clean = engine.crossbar().codes();
        let space = FaultSpace::new(16, 6, FaultDomain::ComputeEngine);
        let map = FaultMap::generate(&space, rate, seed);
        inject(&mut engine, &map).expect("fits");
        engine.reload_parameters(&mut NoGuard);
        prop_assert_eq!(engine.crossbar().codes(), clean);
        prop_assert!(engine.neurons().iter().all(|n| !n.faults.any()));
    }

    /// Quantize→dequantize error is bounded by half an LSB for in-range
    /// weights.
    #[test]
    fn quantization_error_is_bounded(w in 0.0_f32..2.0) {
        let scheme = QuantScheme::new(8, 2.0);
        let err = (scheme.dequantize(scheme.quantize(w)) - w).abs();
        prop_assert!(err <= scheme.lsb() / 2.0 + 1e-6);
    }

    /// The engine never spikes on silent input, no matter the faults in
    /// the weight registers (spikes need input spikes to integrate) —
    /// unless a neuron's reset is broken, which needs drive first too.
    #[test]
    fn silent_input_stays_silent_under_weight_faults(
        rate in 0.0_f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut engine = small_engine(4);
        let space = FaultSpace::new(16, 6, FaultDomain::Synapses);
        let map = FaultMap::generate(&space, rate, seed);
        inject(&mut engine, &map).expect("fits");
        for _ in 0..20 {
            let fired = engine.step(&[], &softsnn::hw::engine::DirectRead, &mut NoGuard);
            prop_assert!(fired.is_empty());
        }
    }

    /// Majority vote is permutation-insensitive for 3 votes with a
    /// strict majority.
    #[test]
    fn majority_vote_is_stable(a in 0_usize..4, b in 0_usize..4) {
        use softsnn::core::mitigation::majority_vote;
        let votes = [Some(a), Some(b), Some(a)];
        prop_assert_eq!(majority_vote(&votes), Some(a));
        let votes_rev = [Some(a), Some(a), Some(b)];
        prop_assert_eq!(majority_vote(&votes_rev), Some(a));
    }
}
