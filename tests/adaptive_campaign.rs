//! Adaptive (sequential early stopping) campaigns on the real Fig. 13
//! smoke grid: early-stopped cells must be bit-identical prefixes of the
//! pinned fixed-budget trials, interrupt/resume must splice to the same
//! artifact bytes, and the stop rule must actually save trials.

use snn_faults::service::RunOptions;
use snn_faults::stats::{Lookahead, StopRule};
use snn_faults::CampaignService;
use softsnn::data::workload::Workload;
use softsnn::exp::campaign::{self, JobConfig, JobRunOutcome};
use softsnn::exp::fig13;
use softsnn::exp::profile::Profile;
use softsnn_core::methodology::EngineBackendKind;

/// Stops every smoke cell at 2 of its 3 budgeted trials: at `n = 2` the
/// Hoeffding half-width is `100·sqrt(ln(2/0.4)/4) ≈ 63.4 ≤ 70`.
fn smoke_rule() -> StopRule {
    StopRule::new(2, 3, 70.0, 0.6).unwrap()
}

#[test]
fn adaptive_smoke_campaign_stops_on_pinned_prefixes_and_resumes_identically() {
    let root = std::env::temp_dir().join(format!("softsnn_adaptive_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let service = CampaignService::new(&root);
    let config = JobConfig {
        workload: Workload::Mnist,
        n_neurons: 100,
        profile: Profile::Smoke,
        backend: EngineBackendKind::Dense,
    };
    let opts = RunOptions {
        stop_rule: Some(smoke_rule()),
        ..RunOptions::default()
    };

    // One-shot adaptive run.
    let (job, bench) = campaign::submit_job(&service, "oneshot", config).unwrap();
    let oneshot = match campaign::run_job(&job, &bench, opts).unwrap() {
        JobRunOutcome::Complete(results) => results,
        JobRunOutcome::Interrupted { done, total } => {
            panic!("full pass must complete, stopped at {done}/{total}")
        }
    };

    // The rule fired in every cell: 2 of 3 trials ran, 20 trials saved.
    let status = job.status().unwrap();
    assert!(status.is_complete());
    assert_eq!(status.trials_per_cell, 3);
    assert_eq!(status.trials_run(), 40);
    assert_eq!(status.trials_saved(), 20);
    for progress in &status.cells {
        assert_eq!(progress.trials_run, 2);
        assert!(progress.stopped_early);
    }

    // Early-stopped cells are bit-identical prefixes of the *pinned*
    // fixed-budget trials (tests/pinned_smoke.rs captures): the adaptive
    // path consumed the same seed stream, in the same order, and simply
    // stopped sooner. No pin was re-captured for this.
    let nomit_high: Vec<u64> = oneshot.cells[3]
        .trials
        .iter()
        .map(|t| t.to_bits())
        .collect();
    assert_eq!(
        nomit_high,
        vec![0x4039_0000_0000_0000, 0x4029_0000_0000_0000]
    );
    let bnp3_mid: Vec<u64> = oneshot.cells[18]
        .trials
        .iter()
        .map(|t| t.to_bits())
        .collect();
    assert_eq!(bnp3_mid, vec![0x4050_4000_0000_0000, 0x404E_0000_0000_0000]);

    // The direct (service-free) adaptive grid runner produces the same
    // cells as the checkpointed job.
    let direct = fig13::run_grid_adaptive(&bench, Profile::Smoke, smoke_rule()).unwrap();
    assert_eq!(direct, oneshot.cells);

    // Interrupt an identical adaptive job after 7 cells, then resume it:
    // the rendered artifact must be byte-identical to the one-shot's.
    let (job2, bench2) = campaign::submit_job(&service, "resumed", config).unwrap();
    let first = RunOptions {
        max_cells: Some(7),
        ..opts
    };
    match campaign::run_job(&job2, &bench2, first).unwrap() {
        JobRunOutcome::Interrupted { done, total } => assert_eq!((done, total), (7, 20)),
        JobRunOutcome::Complete(_) => panic!("7 < 20 cells must interrupt"),
    }
    let resumed = match campaign::run_job(&job2, &bench2, opts).unwrap() {
        JobRunOutcome::Complete(results) => results,
        JobRunOutcome::Interrupted { done, total } => {
            panic!("full pass must complete, stopped at {done}/{total}")
        }
    };
    assert_eq!(
        fig13::to_json(&resumed).render(),
        fig13::to_json(&oneshot).render(),
        "resumed adaptive artifact diverged from the one-shot adaptive run"
    );
    // And the checkpoint files themselves are byte-identical.
    for key in job.cell_keys() {
        let a = std::fs::read(job.cell_path(key)).unwrap();
        let b = std::fs::read(job2.cell_path(key)).unwrap();
        assert_eq!(a, b, "cell {key:?} checkpoint differs");
    }

    // Lookahead arm against the SAME pins — no re-capture: speculative
    // batching at the widest group size must keep exactly the trials the
    // sequential run keeps, land byte-identical checkpoints, and render
    // the same artifact. Evaluated counts may exceed kept counts; the
    // kept trials may not move.
    let (job3, bench3) = campaign::submit_job(&service, "lookahead", config).unwrap();
    let lookahead_opts = RunOptions {
        stop_rule: Some(smoke_rule()),
        lookahead: Lookahead::Fixed(16),
        ..RunOptions::default()
    };
    let speculative = match campaign::run_job(&job3, &bench3, lookahead_opts).unwrap() {
        JobRunOutcome::Complete(results) => results,
        JobRunOutcome::Interrupted { done, total } => {
            panic!("full pass must complete, stopped at {done}/{total}")
        }
    };
    let la_nomit: Vec<u64> = speculative.cells[3]
        .trials
        .iter()
        .map(|t| t.to_bits())
        .collect();
    assert_eq!(la_nomit, vec![0x4039_0000_0000_0000, 0x4029_0000_0000_0000]);
    let la_bnp3: Vec<u64> = speculative.cells[18]
        .trials
        .iter()
        .map(|t| t.to_bits())
        .collect();
    assert_eq!(la_bnp3, vec![0x4050_4000_0000_0000, 0x404E_0000_0000_0000]);
    assert_eq!(
        fig13::to_json(&speculative).render(),
        fig13::to_json(&oneshot).render(),
        "lookahead artifact diverged from the sequential adaptive run"
    );
    for key in job.cell_keys() {
        let a = std::fs::read(job.cell_path(key)).unwrap();
        let b = std::fs::read(job3.cell_path(key)).unwrap();
        assert_eq!(a, b, "cell {key:?} differs under lookahead");
    }
    let la_status = job3.status().unwrap();
    assert_eq!(la_status.trials_run(), 40);
    assert!(
        la_status.trials_evaluated() >= la_status.trials_run(),
        "evaluated must cover the kept prefix"
    );
    // The direct lookahead grid runner agrees with the service cells too.
    let direct_la = fig13::run_grid_adaptive_lookahead(
        &bench,
        Profile::Smoke,
        smoke_rule(),
        Lookahead::Fixed(16),
    )
    .unwrap();
    assert_eq!(direct_la, oneshot.cells);

    let _ = std::fs::remove_dir_all(&root);
}

/// The lookahead clamp and the engine's multi-map width are the same
/// number by design: a speculative group wider than what one
/// `run_batch_multi_map` pass can carry would silently split and lose
/// the batching it exists to recover.
#[test]
fn lookahead_clamp_matches_the_engine_multi_map_width() {
    assert_eq!(snn_faults::stats::MAX_LOOKAHEAD, snn_hw::engine::MAX_MAPS);
}
