//! Deployment-level backend equivalence and the grid-shard reuse
//! regression for the event-driven backend.
//!
//! The engine-layer proptests prove the backends bit-identical per
//! call; these tests prove the *deployment* plumbing preserves that —
//! every technique's evaluate path (including re-execution's repeated
//! runs and BnP's guarded bounded reads) must produce identical
//! accuracies through either backend, and a shard-style reused
//! event-backend deployment clone must match fresh clones point for
//! point (heal-on-entry recompiles the adjacency, so no state leaks
//! across trials).

use snn_faults::location::FaultDomain;
use softsnn::data::workload::Workload;
use softsnn::exp::profile::Profile;
use softsnn::exp::workbench::{prepare, prepare_with_backend};
use softsnn_core::methodology::{EngineBackendKind, FaultScenario};
use softsnn_core::mitigation::Technique;

/// Every paper technique, at a fault rate high enough to matter, must
/// give bit-identical accuracy through the dense and event backends.
#[test]
fn techniques_are_bit_identical_across_backends() {
    let dense_bench = prepare(Workload::Mnist, 100, Profile::Smoke).unwrap();
    let event_bench = prepare_with_backend(
        Workload::Mnist,
        100,
        Profile::Smoke,
        EngineBackendKind::Event,
    )
    .unwrap();
    assert_eq!(dense_bench.deployment.backend(), EngineBackendKind::Dense);
    assert_eq!(event_bench.deployment.backend(), EngineBackendKind::Event);
    let mut dense = dense_bench.deployment.clone();
    let mut event = event_bench.deployment.clone();
    for technique in Technique::PAPER_SET {
        for domain in [FaultDomain::Synapses, FaultDomain::ComputeEngine] {
            let scenario = FaultScenario {
                domain,
                rate: 0.05,
                seed: 0xeb_1234,
            };
            let a = dense
                .evaluate_encoded(technique, &scenario, &dense_bench.encoded)
                .unwrap();
            let b = event
                .evaluate_encoded(technique, &scenario, &event_bench.encoded)
                .unwrap();
            assert_eq!(
                a.accuracy_pct().to_bits(),
                b.accuracy_pct().to_bits(),
                "{technique} / {domain:?}: backends diverged ({} vs {})",
                a.accuracy_pct(),
                b.accuracy_pct()
            );
        }
    }
}

/// The grid runner's shard discipline — one deployment clone reused
/// across many points, healing on entry — must leak no state between
/// trials on the event backend: a reused clone's point-by-point results
/// equal a fresh clone per point, and equal the dense backend.
#[test]
fn event_backend_shard_reuse_leaks_no_state() {
    let bench = prepare_with_backend(
        Workload::Mnist,
        100,
        Profile::Smoke,
        EngineBackendKind::Event,
    )
    .unwrap();
    let dense_bench = prepare(Workload::Mnist, 100, Profile::Smoke).unwrap();
    // Point list shaped like a shard: mixed techniques, domains, rates.
    let points: Vec<(Technique, FaultScenario)> = (0..8)
        .map(|i| {
            (
                Technique::PAPER_SET[i % 5],
                FaultScenario {
                    domain: if i % 2 == 0 {
                        FaultDomain::ComputeEngine
                    } else {
                        FaultDomain::Synapses
                    },
                    rate: [0.02, 0.1][i % 2],
                    seed: 0x5ead + i as u64,
                },
            )
        })
        .collect();
    // One reused clone (shard-local discipline)...
    let mut reused = bench.deployment.clone();
    let via_reuse: Vec<u64> = points
        .iter()
        .map(|(t, s)| {
            reused
                .evaluate_encoded(*t, s, &bench.encoded)
                .unwrap()
                .accuracy_pct()
                .to_bits()
        })
        .collect();
    // ...versus a fresh clone per point, and the dense backend.
    for (i, (t, s)) in points.iter().enumerate() {
        let fresh = bench
            .deployment
            .clone()
            .evaluate_encoded(*t, s, &bench.encoded)
            .unwrap()
            .accuracy_pct()
            .to_bits();
        assert_eq!(
            via_reuse[i], fresh,
            "point {i} ({t} / {s:?}): reused event-backend clone diverged from fresh clone"
        );
        let dense = dense_bench
            .deployment
            .clone()
            .evaluate_encoded(*t, s, &dense_bench.encoded)
            .unwrap()
            .accuracy_pct()
            .to_bits();
        assert_eq!(
            via_reuse[i], dense,
            "point {i} ({t} / {s:?}): event backend diverged from dense"
        );
    }
}
