//! Stuck-at persistence regression: permanent faults must survive the
//! heal-on-entry contract on **both** backends.
//!
//! `reload_parameters` restores the clean crossbar image — that heals
//! transient flips, but an installed stuck-at bit must re-manifest on
//! top of every freshly restored image. The event backend additionally
//! has to see the mutation-epoch bump from the re-application, so its
//! compiled adjacency is rebuilt from the re-stuck image rather than
//! served stale from the pre-heal compilation.

use snn_faults::injector::install_stuck_at;
use snn_faults::location::{FaultDomain, FaultSpace};
use snn_faults::permanent::StuckAtMap;
use snn_hw::backend::{AnyBackend, EngineBackend, EngineBackendKind};
use snn_hw::engine::{ComputeEngine, DirectRead, NoGuard};
use snn_sim::config::SnnConfig;
use snn_sim::network::Network;
use snn_sim::quant::QuantizedNetwork;
use snn_sim::rng::seeded_rng;
use snn_sim::spike::SpikeTrain;

const ROWS: usize = 16;
const COLS: usize = 8;

fn engine() -> ComputeEngine {
    let cfg = SnnConfig::builder()
        .n_inputs(ROWS)
        .n_neurons(COLS)
        .build()
        .unwrap();
    let net = Network::new(cfg, &mut seeded_rng(7));
    let qn = QuantizedNetwork::from_network_default(&net);
    ComputeEngine::for_network(&qn).unwrap()
}

fn stuck_map(seed: u64) -> StuckAtMap {
    let space = FaultSpace::new(ROWS, COLS, FaultDomain::Synapses);
    let map = StuckAtMap::generate(&space, 0.15, seed);
    assert!(!map.is_empty());
    map
}

/// The clean image with `map`'s stuck values forced — what the crossbar
/// must read as after any number of heals.
fn stuck_image(clean: &[u8], map: &StuckAtMap) -> Vec<u8> {
    let mut expected = clean.to_vec();
    for s in map.sites() {
        let i = s.row as usize * COLS + s.col as usize;
        expected[i] = s.apply(expected[i]);
    }
    expected
}

fn sample_train(seed: u32) -> SpikeTrain {
    let mut train = SpikeTrain::new(ROWS, 20);
    for t in 0..20_u32 {
        let rows: Vec<u32> = (0..ROWS as u32)
            .filter(|r| (r * 31 + t * 17 + seed).is_multiple_of(3))
            .collect();
        train.push_step(rows);
    }
    train
}

#[test]
fn stuck_bits_remanifest_after_every_reload_on_the_dense_engine() {
    let mut e = engine();
    let clean = e.crossbar().codes();
    let map = stuck_map(42);
    let expected = stuck_image(&clean, &map);
    assert_ne!(expected, clean, "map must actually change some register");

    assert_eq!(install_stuck_at(&mut e, &map).unwrap(), map.len());
    assert_eq!(
        e.crossbar().codes(),
        expected,
        "install applies immediately"
    );

    // Heal repeatedly: transient state is restored each time, but the
    // stuck bits come back every time.
    for round in 0..3 {
        e.reload_parameters(&mut NoGuard);
        assert_eq!(
            e.crossbar().codes(),
            expected,
            "round {round}: reload healed a permanent fault away"
        );
    }

    // Clearing the set turns the next heal into a genuine full heal.
    e.clear_stuck_bits();
    e.reload_parameters(&mut NoGuard);
    assert_eq!(e.crossbar().codes(), clean);
}

#[test]
fn stuck_bits_remanifest_bit_identically_across_backends() {
    let base = engine();
    let clean = base.crossbar().codes();
    let mut dense = AnyBackend::dense(base.clone());
    let mut event = AnyBackend::dense(base);
    event.set_kind(EngineBackendKind::Event);
    assert_eq!(event.kind(), EngineBackendKind::Event);

    // Warm both backends up *before* installing, so the event engine has
    // a compiled adjacency over the clean image — the regression here is
    // that compilation being served stale after install + heal.
    let warmup = sample_train(99);
    dense.run_sample_into(&warmup, &DirectRead, &mut NoGuard);
    event.run_sample_into(&warmup, &DirectRead, &mut NoGuard);

    let map = stuck_map(9);
    let expected = stuck_image(&clean, &map);
    assert_ne!(expected, clean);
    install_stuck_at(dense.engine_mut(), &map).unwrap();
    install_stuck_at(event.engine_mut(), &map).unwrap();

    // Shard discipline: heal on entry, then evaluate — several trials
    // over one reused engine.
    for trial in 0..3_u32 {
        dense.reload_parameters(&mut NoGuard);
        event.reload_parameters(&mut NoGuard);
        assert_eq!(dense.engine().crossbar().codes(), expected);
        assert_eq!(event.engine().crossbar().codes(), expected);
        let train = sample_train(trial);
        let a = dense
            .run_sample_into(&train, &DirectRead, &mut NoGuard)
            .to_vec();
        let b = event
            .run_sample_into(&train, &DirectRead, &mut NoGuard)
            .to_vec();
        assert_eq!(
            a, b,
            "trial {trial}: backends diverged under stuck-at faults"
        );
        // Oracle: a fresh engine given the same stuck map from scratch.
        let mut fresh = engine();
        install_stuck_at(&mut fresh, &map).unwrap();
        fresh.reload_parameters(&mut NoGuard);
        let c = fresh
            .run_sample_into(&train, &DirectRead, &mut NoGuard)
            .to_vec();
        assert_eq!(
            a, c,
            "trial {trial}: reused stuck engine diverged from a fresh one"
        );
    }
}
